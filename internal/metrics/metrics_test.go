package metrics

import (
	"encoding/json"
	"testing"

	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// TestNilRecorderSafe pins the disabled state: every recording method and
// accessor must be a no-op on a nil *Recorder, because that is what the
// instrumented models hold when no recorder is attached.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	src := packet.Client{Node: 0, Kind: packet.Slice0}
	r.PacketSend(1, src, 0, 42)
	r.HopDepart(1, 0, topo.Port{Dim: topo.X, Dir: +1}, 61)
	r.LinkTransfer(1, 0, topo.Port{Dim: topo.X, Dir: +1}, 61, 100, 32, 0)
	r.HopArrive(1, 1, 101)
	r.DeliverStart(1, src, 126)
	r.Deliver(1, src, 162)
	r.CountArm(src, 9, 1, 0)
	r.CountFire(src, 9, 1, 162)
	r.ClusterDeliver(1, 0, 100)
	r.Span("phase", 0, 100)
	if r.Events() != nil || r.Spans() != nil || r.Links() != nil || r.Lifecycles() != nil {
		t.Fatal("nil recorder returned data")
	}
	if a, f := r.CounterWaits(); a != 0 || f != 0 {
		t.Fatal("nil recorder counted waits")
	}
	if r.AntonLatencies() != nil || r.ClusterLatencies() != nil {
		t.Fatal("nil recorder returned latencies")
	}
	var tr struct {
		Events []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(r.ChromeTrace(), &tr); err != nil {
		t.Fatalf("nil recorder chrome trace is not valid JSON: %v", err)
	}
	if len(tr.Events) != 0 {
		t.Fatal("nil recorder chrome trace has events")
	}
}

func TestAttachFromSim(t *testing.T) {
	s := sim.New()
	if FromSim(s) != nil {
		t.Fatal("fresh sim has a recorder")
	}
	r := Attach(s)
	if r == nil || FromSim(s) != r {
		t.Fatal("Attach did not install the recorder")
	}
	if !r.Enabled() {
		t.Fatal("attached recorder not enabled")
	}
}

// record the canonical one-hop X+ 0-byte lifecycle of the paper's Figure
// 6: inject 0, ring-enter 42 ns, depart 61 ns, arrive 101 ns, deliver
// start 126 ns, commit 162 ns.
func recordOneHop(r *Recorder, seq uint64) {
	ns := func(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Ns) }
	src := packet.Client{Node: 0, Kind: packet.Slice0}
	dst := packet.Client{Node: 1, Kind: packet.Slice0}
	xp := topo.Port{Dim: topo.X, Dir: +1}
	r.PacketSend(seq, src, ns(0), ns(42))
	r.HopDepart(seq, 0, xp, ns(61))
	r.LinkTransfer(seq, 0, xp, ns(61), 32*200, 32, 0)
	r.HopArrive(seq, 1, ns(101))
	r.DeliverStart(seq, dst, ns(126))
	r.Deliver(seq, dst, ns(162))
}

func TestLifecycleReconstruction(t *testing.T) {
	r := New()
	recordOneHop(r, 7)
	lcs := r.Lifecycles()
	if len(lcs) != 1 {
		t.Fatalf("got %d lifecycles, want 1", len(lcs))
	}
	lc := lcs[0]
	if lc.Seq != 7 || len(lc.Hops) != 1 {
		t.Fatalf("lifecycle = %+v", lc)
	}
	if got := lc.E2E(); got != 162*sim.Ns {
		t.Fatalf("E2E = %v, want 162ns", got)
	}
	stages := lc.Stages()
	wantNs := map[string]float64{
		"send initiation":                                    42,
		"source ring traversal":                              19,
		"link adapters + wire (X hop 1)":                     40,
		"payload serialization + destination ring traversal": 25,
		"memory write + counter increment + successful poll": 36,
	}
	if len(stages) != len(wantNs) {
		t.Fatalf("got %d stages: %v", len(stages), stages)
	}
	var total sim.Dur
	for _, st := range stages {
		if w, ok := wantNs[st.Label]; !ok || st.Dur.Ns() != w {
			t.Fatalf("stage %q = %.1f ns, want %v", st.Label, st.Dur.Ns(), wantNs[st.Label])
		}
		total += st.Dur
	}
	if total != lc.E2E() {
		t.Fatalf("stages sum %v != E2E %v", total, lc.E2E())
	}
}

// TestLifecycleSkipsOtherSequenceSpaces pins that counter and cluster
// events — which reuse the Seq field for other identifiers — never
// corrupt packet lifecycle reconstruction.
func TestLifecycleSkipsOtherSequenceSpaces(t *testing.T) {
	r := New()
	recordOneHop(r, 7)
	c := packet.Client{Node: 3, Kind: packet.Slice1}
	r.CountArm(c, 5, 7, 0) // target 7 collides with packet seq 7
	r.CountFire(c, 5, 7, 100)
	seq := r.ClusterSend(0, 1, 32, 0)
	r.ClusterDeliver(seq, 1, 50)
	lcs := r.Lifecycles()
	if len(lcs) != 1 || len(lcs[0].Hops) != 1 || lcs[0].E2E() != 162*sim.Ns {
		t.Fatalf("foreign events corrupted lifecycles: %+v", lcs)
	}
	if got := r.ClusterLatencies(); len(got) != 1 || got[0] != 50 {
		t.Fatalf("cluster latencies = %v", got)
	}
}

// TestMulticastLifecycleExcluded: a packet delivered to several
// destinations has a branching timeline and must be excluded from stage
// attribution while still contributing per-destination latency samples.
func TestMulticastLifecycleExcluded(t *testing.T) {
	r := New()
	src := packet.Client{Node: 0, Kind: packet.Slice0}
	d1 := packet.Client{Node: 1, Kind: packet.Slice0}
	d2 := packet.Client{Node: 2, Kind: packet.Slice0}
	r.PacketSend(1, src, 0, 42)
	r.Deliver(1, d1, 162)
	r.Deliver(1, d2, 238)
	if lcs := r.Lifecycles(); len(lcs) != 0 {
		t.Fatalf("multicast lifecycle not excluded: %+v", lcs)
	}
	lats := r.AntonLatencies()
	if len(lats) != 2 || lats[0] != 162 || lats[1] != 238 {
		t.Fatalf("latencies = %v, want [162 238]", lats)
	}
}

func TestLinkCounters(t *testing.T) {
	r := New()
	xp := topo.Port{Dim: topo.X, Dir: +1}
	yp := topo.Port{Dim: topo.Y, Dir: +1}
	r.LinkTransfer(1, 5, xp, 100, 6400, 32, 0)
	r.LinkTransfer(2, 5, xp, 6500, 6400, 32, 400)
	r.LinkTransfer(3, 2, yp, 0, 57600, 288, 0)
	links := r.Links()
	if len(links) != 2 {
		t.Fatalf("got %d links, want 2", len(links))
	}
	// Sorted by (node, port): node 2 Y+ first, then node 5 X+.
	if links[0].Key.Node != 2 || links[1].Key.Node != 5 {
		t.Fatalf("links unsorted: %+v", links)
	}
	l := links[1]
	if l.Packets != 2 || l.Bytes != 64 || l.Busy != 12800 {
		t.Fatalf("link counters = %+v", l)
	}
	if l.Queued != 1 || l.MaxWait != 400 {
		t.Fatalf("queueing counters = %+v", l)
	}
}

func TestEventsSortedStable(t *testing.T) {
	r := New()
	src := packet.Client{Node: 0, Kind: packet.Slice0}
	// Recorded out of order: Events() must sort by time but keep the
	// recording order of same-instant events.
	r.Deliver(2, src, 100)
	r.Deliver(1, src, 50)
	r.Deliver(3, src, 100)
	ev := r.Events()
	if ev[0].Seq != 1 || ev[1].Seq != 2 || ev[2].Seq != 3 {
		t.Fatalf("events not stably sorted: %+v", ev)
	}
}
