package metrics

import (
	"fmt"
	"sort"

	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Hop is one link traversal in a reconstructed packet lifecycle.
type Hop struct {
	Node           topo.NodeID // node whose outgoing link was traversed
	Port           int         // dense port index (topo.PortIndex)
	Depart         sim.Time    // header at the egress side of Node
	SerializeStart sim.Time    // link begins serializing
	SerializeEnd   sim.Time    // link occupancy ends
	Arrive         sim.Time    // header exits the arriving adapter at the next node
}

// Dim returns the hop's dimension.
func (h Hop) Dim() topo.Dim { return topo.Ports[h.Port].Dim }

// Lifecycle is the reconstructed timeline of one unicast packet, from
// injection to delivery commit.
type Lifecycle struct {
	Seq          uint64
	Src, Dst     packet.Client
	Inject       sim.Time
	RingEnter    sim.Time
	Hops         []Hop
	DeliverStart sim.Time
	Deliver      sim.Time
}

// E2E returns the end-to-end (inject -> deliver commit) latency.
func (lc *Lifecycle) E2E() sim.Dur { return lc.Deliver.Sub(lc.Inject) }

// Lifecycles reconstructs the per-packet timelines of every unicast
// packet that reached delivery, sorted by sequence number. Multicast
// packets (whose lifecycle branches) are skipped: their deliveries still
// contribute to AntonLatencies and to the chrome trace, but a branching
// timeline has no single stage attribution.
func (r *Recorder) Lifecycles() []*Lifecycle {
	if r == nil {
		return nil
	}
	byseq := make(map[uint64]*Lifecycle)
	deliveries := make(map[uint64]int)
	for _, e := range r.Events() {
		if e.Kind > EvDeliver {
			continue // counter and cluster events live in other sequence spaces
		}
		lc := byseq[e.Seq]
		if lc == nil {
			lc = &Lifecycle{Seq: e.Seq}
			byseq[e.Seq] = lc
		}
		switch e.Kind {
		case EvInject:
			lc.Inject = e.At
			lc.Src = packet.Client{Node: topo.NodeID(e.Node), Kind: packet.ClientKind(e.Client)}
		case EvRingEnter:
			lc.RingEnter = e.At
		case EvHopDepart:
			lc.Hops = append(lc.Hops, Hop{Node: topo.NodeID(e.Node), Port: int(e.Port), Depart: e.At})
		case EvSerializeStart:
			if n := len(lc.Hops); n > 0 {
				lc.Hops[n-1].SerializeStart = e.At
			}
		case EvSerializeEnd:
			if n := len(lc.Hops); n > 0 {
				lc.Hops[n-1].SerializeEnd = e.At
			}
		case EvHopArrive:
			if n := len(lc.Hops); n > 0 {
				lc.Hops[n-1].Arrive = e.At
			}
		case EvDeliverStart:
			lc.DeliverStart = e.At
		case EvDeliver:
			lc.Deliver = e.At
			lc.Dst = packet.Client{Node: topo.NodeID(e.Node), Kind: packet.ClientKind(e.Client)}
			deliveries[e.Seq]++
		}
	}
	out := make([]*Lifecycle, 0, len(byseq))
	for seq, lc := range byseq {
		// Unicast lifecycles have exactly one delivery; a branching
		// multicast has several (or, per branch, duplicate hop chains).
		if deliveries[seq] != 1 {
			continue
		}
		out = append(out, lc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Stage is one named component of a packet's end-to-end latency. The
// labels match noc.Stage labels exactly, so a measured lifecycle can be
// compared against the calibrated closed-form breakdown stage by stage.
type Stage struct {
	Label string
	Dur   sim.Dur
}

// Stages attributes the lifecycle's end-to-end latency to pipeline
// stages: injection, ring traversals, per-hop link wait/adapter time,
// through-node time, payload serialization + destination ring, and
// delivery. The stage durations sum exactly to E2E (every boundary
// instant is shared between adjacent stages).
func (lc *Lifecycle) Stages() []Stage {
	var out []Stage
	add := func(label string, d sim.Dur) { out = append(out, Stage{label, d}) }
	add("send initiation", lc.RingEnter.Sub(lc.Inject))
	if len(lc.Hops) == 0 {
		add("local ring traversal", lc.DeliverStart.Sub(lc.RingEnter))
	} else {
		add("source ring traversal", lc.Hops[0].Depart.Sub(lc.RingEnter))
		for i, h := range lc.Hops {
			if i > 0 {
				add(fmt.Sprintf("through node (%v hop %d)", h.Dim(), i+1),
					h.Depart.Sub(lc.Hops[i-1].Arrive))
			}
			if w := h.SerializeStart.Sub(h.Depart); w > 0 {
				add(fmt.Sprintf("link wait (%v hop %d)", h.Dim(), i+1), w)
			}
			add(fmt.Sprintf("link adapters + wire (%v hop %d)", h.Dim(), i+1),
				h.Arrive.Sub(h.SerializeStart))
		}
		add("payload serialization + destination ring traversal",
			lc.DeliverStart.Sub(lc.Hops[len(lc.Hops)-1].Arrive))
	}
	add("memory write + counter increment + successful poll",
		lc.Deliver.Sub(lc.DeliverStart))
	return out
}
