package metrics_test

import (
	"strings"
	"testing"

	"anton/internal/fault"
	"anton/internal/machine"
	"anton/internal/metrics"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// recoveryRun streams n 256-byte counted writes (0,0,0) -> (1,0,0) on a
// 4x4x4 machine under plan, optionally with a recorder attached, and
// returns the recorder (nil if record is false), the completion time,
// and the destination's memory.
func recoveryRun(plan string, n int, record bool) (*metrics.Recorder, sim.Time, []float64) {
	s := sim.New()
	var rec *metrics.Recorder
	if record {
		rec = metrics.Attach(s)
	}
	fault.Attach(s, fault.MustParsePlan(plan))
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
	a := packet.Client{Node: m.Torus.ID(topo.C(0, 0, 0)), Kind: packet.Slice0}
	b := packet.Client{Node: m.Torus.ID(topo.C(1, 0, 0)), Kind: packet.Slice0}
	var done sim.Time = -1
	m.Client(b).Wait(7, uint64(n), func() { done = s.Now() })
	for i := 0; i < n; i++ {
		m.Client(a).Write(b, 7, i, 256, float64(i))
	}
	s.Run()
	return rec, done, m.Client(b).Mem(0, n)
}

// countKinds tallies the recovery-related event kinds in a stream.
func countKinds(events []metrics.Event) map[metrics.EventKind]int {
	got := map[metrics.EventKind]int{}
	for _, e := range events {
		switch e.Kind {
		case metrics.EvPacketLost, metrics.EvWatchdogFire, metrics.EvReissue, metrics.EvDegraded:
			got[e.Kind]++
		}
	}
	return got
}

// TestRecoveryEventsInLifecycleStream pins the observability of hard-
// failure recovery: a link killed mid-stream must surface packet-lost,
// watchdog-fire, and reissue events in the recorder's stream, and a
// dead-node degraded wait must surface a degraded event — each also
// rendered as an instant event in the chrome trace.
func TestRecoveryEventsInLifecycleStream(t *testing.T) {
	// Mid-flight link kill: losses are recoverable, so the watchdog
	// re-issues them and nothing degrades.
	rec, done, _ := recoveryRun("seed=1,killlink=0:X+@1us,wdog=5us", 40, true)
	if done < 0 {
		t.Fatal("killed-link stream never completed")
	}
	got := countKinds(rec.Events())
	if got[metrics.EvPacketLost] == 0 || got[metrics.EvWatchdogFire] == 0 || got[metrics.EvReissue] == 0 {
		t.Fatalf("killed-link run missing recovery events: lost=%d wdog=%d reissue=%d",
			got[metrics.EvPacketLost], got[metrics.EvWatchdogFire], got[metrics.EvReissue])
	}
	if got[metrics.EvReissue] != got[metrics.EvPacketLost] {
		t.Errorf("reissues %d != losses %d: every recoverable loss must be re-sent",
			got[metrics.EvReissue], got[metrics.EvPacketLost])
	}
	if got[metrics.EvDegraded] != 0 {
		t.Errorf("recoverable losses must not emit degraded events, got %d", got[metrics.EvDegraded])
	}
	trace := string(rec.ChromeTrace())
	for _, want := range []string{"lost pkt", "watchdog ctr", "reissue pkt"} {
		if !strings.Contains(trace, want) {
			t.Errorf("chrome trace missing %q instant events", want)
		}
	}

	// Dead destination: losses are unrecoverable, the wait completes
	// degraded, and the trace says so.
	rec, done, _ = recoveryRun("seed=1,killnode=16@0ns,wdog=2us", 4, true)
	if done < 0 {
		t.Fatal("dead-node wait never completed")
	}
	got = countKinds(rec.Events())
	if got[metrics.EvDegraded] == 0 || got[metrics.EvPacketLost] == 0 {
		t.Fatalf("dead-node run missing events: lost=%d degraded=%d",
			got[metrics.EvPacketLost], got[metrics.EvDegraded])
	}
	if !strings.Contains(string(rec.ChromeTrace()), "degraded ctr") {
		t.Error("chrome trace missing degraded instant event")
	}
}

// TestRecoveryRecordingZeroOverhead pins that observing a recovery
// changes nothing about it: the killed-link run's completion time and
// recovered memory contents are bit-identical with and without a
// recorder attached.
func TestRecoveryRecordingZeroOverhead(t *testing.T) {
	_, plainDone, plainMem := recoveryRun("seed=1,killlink=0:X+@1us,wdog=5us", 40, false)
	_, recDone, recMem := recoveryRun("seed=1,killlink=0:X+@1us,wdog=5us", 40, true)
	if plainDone != recDone {
		t.Fatalf("recording changed the recovery completion time: %d vs %d ps",
			int64(recDone), int64(plainDone))
	}
	for i := range plainMem {
		if plainMem[i] != recMem[i] {
			t.Fatalf("recording changed recovered memory word %d: %v vs %v", i, recMem[i], plainMem[i])
		}
	}
}
