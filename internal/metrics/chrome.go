package metrics

import (
	"fmt"
	"sort"
	"strings"

	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Chrome-trace export: the recorder's event stream rendered in the Trace
// Event Format that chrome://tracing (and Perfetto's legacy loader)
// consumes. Each simulated node becomes a process; within a node, each
// outgoing link and each network client becomes a thread. Packet stages
// appear as complete ("X") events, counter arm/fire as instant ("i")
// events, and collective phase spans under a synthetic "phases" process.
//
// The export is a pure function of the recorded stream: events are
// ordered by (time, deterministic recording order) and floats are
// formatted with fixed precision, so the JSON for a fixed (plan, seed)
// run is byte-identical across hosts and worker counts.

// Thread-id layout within a node's process: links use their dense port
// index (0..5); clients follow at 10+kind.
const (
	tidClientBase = 10
	phasesPid     = 1 << 20 // synthetic process for machine-wide phase spans
	clusterPidOff = 1 << 16 // cluster ranks, offset so they never collide with nodes
)

// chromeEvent is one JSON line; buffered so the output can be sorted
// deterministically before rendering.
type chromeEvent struct {
	ph       byte // 'X', 'i', 'M'
	name     string
	pid, tid int64
	ts       sim.Time
	dur      sim.Dur
	order    int // recording order tie-break
}

// ChromeTrace renders the recorded run as chrome://tracing JSON.
func (r *Recorder) ChromeTrace() []byte {
	if r == nil {
		return []byte("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n")
	}
	var evs []chromeEvent
	emit := func(e chromeEvent) {
		e.order = len(evs)
		evs = append(evs, e)
	}

	// Pair up the span-shaped lifecycle events.
	type key struct {
		seq  uint64
		node int32
		sub  int32 // port or client, disambiguating parallel spans of one seq
	}
	openSer := make(map[key]sim.Time)    // serialize-start awaiting serialize-end
	openDel := make(map[key]sim.Time)    // deliver-start awaiting deliver
	openInj := make(map[uint64]sim.Time) // inject awaiting ring-enter
	lastCl := make(map[uint64]sim.Time)  // cluster send awaiting deliver
	clSrc := make(map[uint64]int32)

	clientName := func(k int8) string {
		if k < 0 {
			return "?"
		}
		return packet.ClientKind(k).String()
	}
	for _, e := range r.Events() {
		switch e.Kind {
		case EvInject:
			openInj[e.Seq] = e.At
		case EvRingEnter:
			if t0, ok := openInj[e.Seq]; ok {
				delete(openInj, e.Seq)
				emit(chromeEvent{ph: 'X', name: fmt.Sprintf("inject pkt %d", e.Seq),
					pid: int64(e.Node), tid: tidClientBase + int64(e.Client), ts: t0, dur: e.At.Sub(t0)})
			}
		case EvSerializeStart:
			openSer[key{e.Seq, e.Node, int32(e.Port)}] = e.At
		case EvSerializeEnd:
			k := key{e.Seq, e.Node, int32(e.Port)}
			if t0, ok := openSer[k]; ok {
				delete(openSer, k)
				emit(chromeEvent{ph: 'X', name: fmt.Sprintf("pkt %d (%dB)", e.Seq, e.Aux),
					pid: int64(e.Node), tid: int64(e.Port), ts: t0, dur: e.At.Sub(t0)})
			}
		case EvDeliverStart:
			openDel[key{e.Seq, e.Node, int32(e.Client)}] = e.At
		case EvDeliver:
			k := key{e.Seq, e.Node, int32(e.Client)}
			if t0, ok := openDel[k]; ok {
				delete(openDel, k)
				emit(chromeEvent{ph: 'X', name: fmt.Sprintf("deliver pkt %d", e.Seq),
					pid: int64(e.Node), tid: tidClientBase + int64(e.Client), ts: t0, dur: e.At.Sub(t0)})
			}
		case EvCountArm:
			emit(chromeEvent{ph: 'i', name: fmt.Sprintf("arm ctr %d >= %d", e.Aux, e.Seq),
				pid: int64(e.Node), tid: tidClientBase + int64(e.Client), ts: e.At})
		case EvCountFire:
			emit(chromeEvent{ph: 'i', name: fmt.Sprintf("fire ctr %d >= %d", e.Aux, e.Seq),
				pid: int64(e.Node), tid: tidClientBase + int64(e.Client), ts: e.At})
		case EvPacketLost:
			emit(chromeEvent{ph: 'i', name: fmt.Sprintf("lost pkt %d (reason %d)", e.Seq, e.Aux),
				pid: int64(e.Node), tid: tidClientBase + int64(e.Client), ts: e.At})
		case EvWatchdogFire:
			emit(chromeEvent{ph: 'i', name: fmt.Sprintf("watchdog ctr %d >= %d", e.Aux, e.Seq),
				pid: int64(e.Node), tid: tidClientBase + int64(e.Client), ts: e.At})
		case EvReissue:
			emit(chromeEvent{ph: 'i', name: fmt.Sprintf("reissue pkt %d ctr %d", e.Seq, e.Aux),
				pid: int64(e.Node), tid: tidClientBase + int64(e.Client), ts: e.At})
		case EvDegraded:
			emit(chromeEvent{ph: 'i', name: fmt.Sprintf("degraded ctr %d (missing %d)", e.Aux, e.Seq),
				pid: int64(e.Node), tid: tidClientBase + int64(e.Client), ts: e.At})
		case EvClusterSend:
			lastCl[e.Seq] = e.At
			clSrc[e.Seq] = e.Node
		case EvClusterDeliver:
			if t0, ok := lastCl[e.Seq]; ok {
				delete(lastCl, e.Seq)
				emit(chromeEvent{ph: 'X', name: fmt.Sprintf("msg %d from rank %d", e.Seq, clSrc[e.Seq]),
					pid: clusterPidOff + int64(e.Node), tid: 0, ts: t0, dur: e.At.Sub(t0)})
			}
		}
	}
	for i, s := range r.spans {
		emit(chromeEvent{ph: 'X', name: s.Label, pid: phasesPid, tid: int64(i % 8),
			ts: s.Start, dur: s.End.Sub(s.Start)})
	}

	// Name the processes and threads that actually appear.
	pids := map[int64]bool{}
	tids := map[[2]int64]bool{}
	for _, e := range evs {
		pids[e.pid] = true
		tids[[2]int64{e.pid, e.tid}] = true
	}
	var meta []string
	addMeta := func(pid, tid int64, kind, name string) {
		if tid < 0 {
			meta = append(meta, fmt.Sprintf(
				`{"ph":"M","pid":%d,"name":"%s","args":{"name":"%s"}}`, pid, kind, name))
			return
		}
		meta = append(meta, fmt.Sprintf(
			`{"ph":"M","pid":%d,"tid":%d,"name":"%s","args":{"name":"%s"}}`, pid, tid, kind, name))
	}
	var pidList []int64
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Slice(pidList, func(i, j int) bool { return pidList[i] < pidList[j] })
	for _, pid := range pidList {
		switch {
		case pid == phasesPid:
			addMeta(pid, -1, "process_name", "phases")
		case pid >= clusterPidOff:
			addMeta(pid, -1, "process_name", fmt.Sprintf("rank %d", pid-clusterPidOff))
		default:
			addMeta(pid, -1, "process_name", fmt.Sprintf("node %d", pid))
		}
		var tidList []int64
		for tk := range tids {
			if tk[0] == pid {
				tidList = append(tidList, tk[1])
			}
		}
		sort.Slice(tidList, func(i, j int) bool { return tidList[i] < tidList[j] })
		for _, tid := range tidList {
			switch {
			case pid == phasesPid:
				addMeta(pid, tid, "thread_name", fmt.Sprintf("phase %d", tid))
			case pid >= clusterPidOff:
				addMeta(pid, tid, "thread_name", "messages")
			case tid < tidClientBase:
				addMeta(pid, tid, "thread_name", "link "+topo.Ports[tid].String())
			default:
				addMeta(pid, tid, "thread_name", clientName(int8(tid-tidClientBase)))
			}
		}
	}

	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].ts != evs[j].ts {
			return evs[i].ts < evs[j].ts
		}
		return evs[i].order < evs[j].order
	})

	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	writeLine := func(s string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(s)
	}
	for _, m := range meta {
		writeLine(m)
	}
	us := func(t int64) string { return fmt.Sprintf("%d.%06d", t/1e6, t%1e6) }
	for _, e := range evs {
		switch e.ph {
		case 'X':
			writeLine(fmt.Sprintf(`{"ph":"X","name":%q,"pid":%d,"tid":%d,"ts":%s,"dur":%s}`,
				e.name, e.pid, e.tid, us(int64(e.ts)), us(int64(e.dur))))
		case 'i':
			writeLine(fmt.Sprintf(`{"ph":"i","s":"t","name":%q,"pid":%d,"tid":%d,"ts":%s}`,
				e.name, e.pid, e.tid, us(int64(e.ts))))
		}
	}
	b.WriteString("\n]}\n")
	return []byte(b.String())
}
