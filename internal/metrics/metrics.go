// Package metrics is the measured-latency observability layer: it records
// per-packet lifecycle events (injection, serialization, per-hop
// arrive/depart, delivery, synchronization-counter arm/fire) and per-link
// occupancy from the event-driven models, then derives measured
// counterparts of the paper's published numbers — the Figure 6 stage
// attribution, latency histograms with p50/p99/max, and per-link
// utilization — plus a chrome://tracing-compatible JSON export of any run.
//
// The recorder is attached to a simulator through sim.Sim.Metrics (the
// same narrow hook the fault layer uses), so the machine, cluster, and
// collective models pick it up without new constructor parameters and the
// fault and host-parallelism layers compose unchanged.
//
// Determinism contract: recording is purely passive. Every method only
// appends to buffers or bumps counters — none schedules simulator events,
// reads wall-clock time, or draws randomness — so a run with metrics
// enabled is bit-identical to the same run with metrics disabled, and the
// recorded stream for a fixed (plan, seed) is byte-identical at any host
// worker count (each simulator instance owns a private recorder; shards
// are merged in index order). All methods are safe on a nil *Recorder and
// cost one predicted branch, which is the disabled state.
package metrics

import (
	"sort"

	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// EventKind enumerates the per-packet lifecycle events.
type EventKind uint8

// The lifecycle event taxonomy. A unicast counted remote write emits, in
// simulated-time order: Inject, RingEnter, then per hop HopDepart,
// SerializeStart, SerializeEnd, HopArrive, then DeliverStart and Deliver.
// CountArm/CountFire bracket synchronization-counter waits. Cluster
// messages (the InfiniBand model) use their own send/deliver kinds and an
// independent sequence space.
const (
	EvInject         EventKind = iota // client begins assembling/injecting a packet
	EvRingEnter                       // packet header enters the on-chip ring
	EvHopDepart                       // header reaches the egress side of a node for one hop
	EvSerializeStart                  // link starts serializing the packet
	EvSerializeEnd                    // link occupancy ends (incl. fault retries)
	EvHopArrive                       // header exits the arriving link adapter at the next node
	EvDeliverStart                    // destination client's receive port begins service
	EvDeliver                         // memory/FIFO update + counter increment committed
	EvCountArm                        // a counter wait was registered
	EvCountFire                       // a counter wait's threshold was met and observed
	EvClusterSend                     // cluster rank issued a message
	EvClusterDeliver                  // cluster message landed in receiver software
	EvPacketLost                      // packet destroyed by a hard fault (killed link/node)
	EvWatchdogFire                    // counter watchdog deadline expired, recovery examined the wait
	EvReissue                         // lost counted write re-sent over the recomputed routes
	EvDegraded                        // wait completed in degraded mode with synthesized increments
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"inject", "ring-enter", "hop-depart", "serialize-start", "serialize-end",
	"hop-arrive", "deliver-start", "deliver", "count-arm", "count-fire",
	"cluster-send", "cluster-deliver",
	"packet-lost", "watchdog-fire", "reissue", "degraded",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "event(?)"
}

// Event is one recorded lifecycle event. Field meaning varies slightly by
// kind: Seq is the packet (or cluster-message) sequence number, except for
// counter events where it is the wait's target value; Aux carries the wire
// byte count for serialization events, the counter id for counter events,
// and the peer rank for cluster events.
type Event struct {
	At     sim.Time
	Seq    uint64
	Kind   EventKind
	Node   int32
	Port   int8 // dense port index (topo.PortIndex) or -1
	Client int8 // packet.ClientKind or -1
	Aux    int64
}

// LinkKey names one directed inter-node link: the outgoing port of a node.
type LinkKey struct {
	Node topo.NodeID
	Port int // dense index, see topo.PortIndex
}

// LinkCounters aggregates the traffic observed on one link.
type LinkCounters struct {
	Packets uint64  // packets serialized onto the link
	Bytes   uint64  // wire bytes serialized
	Busy    sim.Dur // accumulated occupancy (incl. fault retries)
	Queued  uint64  // packets that found the link busy and waited
	MaxWait sim.Dur // worst head-of-line wait observed
}

// Recorder accumulates lifecycle events, link counters, and labelled
// phase spans for one simulator instance. The zero value is ready; a nil
// recorder ignores every call.
type Recorder struct {
	events     []Event
	links      map[LinkKey]*LinkCounters
	spans      []PhaseSpan
	clusterSeq uint64
	armed      uint64
	fired      uint64
}

// PhaseSpan is a labelled machine-wide interval (e.g. one all-reduce
// round), recorded by the collective layer.
type PhaseSpan struct {
	Label      string
	Start, End sim.Time
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{links: make(map[LinkKey]*LinkCounters)} }

// Attach installs a fresh recorder on s, where the model constructors
// (machine.New, cluster.New, collective.NewAllReduce) will find it, and
// returns it.
func Attach(s *sim.Sim) *Recorder {
	r := New()
	s.Metrics = r
	return r
}

// FromSim returns the recorder attached to s, or nil.
func FromSim(s *sim.Sim) *Recorder {
	r, _ := s.Metrics.(*Recorder)
	return r
}

// Enabled reports whether r records anything (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

func (r *Recorder) add(e Event) { r.events = append(r.events, e) }

// PacketSend records a client beginning injection of pkt at start; the
// header enters the on-chip ring at ringEnter (start plus the injection
// pipeline latency).
func (r *Recorder) PacketSend(seq uint64, src packet.Client, start, ringEnter sim.Time) {
	if r == nil {
		return
	}
	r.add(Event{At: start, Seq: seq, Kind: EvInject, Node: int32(src.Node), Port: -1, Client: int8(src.Kind)})
	r.add(Event{At: ringEnter, Seq: seq, Kind: EvRingEnter, Node: int32(src.Node), Port: -1, Client: int8(src.Kind)})
}

// HopDepart records the packet header reaching the egress side of node's
// on-chip network for the hop leaving through port.
func (r *Recorder) HopDepart(seq uint64, node topo.NodeID, port topo.Port, at sim.Time) {
	if r == nil {
		return
	}
	r.add(Event{At: at, Seq: seq, Kind: EvHopDepart, Node: int32(node), Port: int8(topo.PortIndex(port)), Client: -1})
}

// LinkTransfer records one link traversal: serialization starts at start
// and occupies the link for service (fault retries included); wait is the
// head-of-line blocking the packet experienced before start.
func (r *Recorder) LinkTransfer(seq uint64, node topo.NodeID, port topo.Port, start sim.Time, service sim.Dur, wireBytes int, wait sim.Dur) {
	if r == nil {
		return
	}
	pi := topo.PortIndex(port)
	r.add(Event{At: start, Seq: seq, Kind: EvSerializeStart, Node: int32(node), Port: int8(pi), Client: -1, Aux: int64(wireBytes)})
	r.add(Event{At: start.Add(service), Seq: seq, Kind: EvSerializeEnd, Node: int32(node), Port: int8(pi), Client: -1, Aux: int64(wireBytes)})
	key := LinkKey{Node: node, Port: pi}
	lc := r.links[key]
	if lc == nil {
		lc = &LinkCounters{}
		r.links[key] = lc
	}
	lc.Packets++
	lc.Bytes += uint64(wireBytes)
	lc.Busy += service
	if wait > 0 {
		lc.Queued++
		if wait > lc.MaxWait {
			lc.MaxWait = wait
		}
	}
}

// HopArrive records the packet header exiting the arriving link adapter at
// node.
func (r *Recorder) HopArrive(seq uint64, node topo.NodeID, at sim.Time) {
	if r == nil {
		return
	}
	r.add(Event{At: at, Seq: seq, Kind: EvHopArrive, Node: int32(node), Port: -1, Client: -1})
}

// DeliverStart records the destination client's receive port beginning
// service for the packet.
func (r *Recorder) DeliverStart(seq uint64, dst packet.Client, at sim.Time) {
	if r == nil {
		return
	}
	r.add(Event{At: at, Seq: seq, Kind: EvDeliverStart, Node: int32(dst.Node), Port: -1, Client: int8(dst.Kind)})
}

// Deliver records the commit instant: memory/FIFO updated, counter
// incremented, the packet observable by software at dst.
func (r *Recorder) Deliver(seq uint64, dst packet.Client, at sim.Time) {
	if r == nil {
		return
	}
	r.add(Event{At: at, Seq: seq, Kind: EvDeliver, Node: int32(dst.Node), Port: -1, Client: int8(dst.Kind)})
}

// CountArm records the registration of a counter wait (counter ctr on
// client c reaching target).
func (r *Recorder) CountArm(c packet.Client, ctr packet.CounterID, target uint64, at sim.Time) {
	if r == nil {
		return
	}
	r.armed++
	r.add(Event{At: at, Seq: target, Kind: EvCountArm, Node: int32(c.Node), Port: -1, Client: int8(c.Kind), Aux: int64(ctr)})
}

// CountFire records a counter wait's threshold being met and observed by
// the polling client.
func (r *Recorder) CountFire(c packet.Client, ctr packet.CounterID, target uint64, at sim.Time) {
	if r == nil {
		return
	}
	r.fired++
	r.add(Event{At: at, Seq: target, Kind: EvCountFire, Node: int32(c.Node), Port: -1, Client: int8(c.Kind), Aux: int64(ctr)})
}

// ClusterSend records a cluster rank issuing a message and returns the
// message's sequence number for the matching ClusterDeliver. Must only be
// called on a non-nil recorder (the caller skips the pair when disabled).
func (r *Recorder) ClusterSend(src, dst int, bytes int, at sim.Time) uint64 {
	r.clusterSeq++
	seq := r.clusterSeq
	r.add(Event{At: at, Seq: seq, Kind: EvClusterSend, Node: int32(src), Port: -1, Client: -1, Aux: int64(dst)})
	return seq
}

// ClusterDeliver records the message seq landing in rank dst's software.
func (r *Recorder) ClusterDeliver(seq uint64, dst int, at sim.Time) {
	if r == nil {
		return
	}
	r.add(Event{At: at, Seq: seq, Kind: EvClusterDeliver, Node: int32(dst), Port: -1, Client: -1})
}

// PacketLost records packet seq being destroyed by a hard fault on its
// way to dst; reason is the machine layer's loss-reason code.
func (r *Recorder) PacketLost(seq uint64, dst packet.Client, reason int, at sim.Time) {
	if r == nil {
		return
	}
	r.add(Event{At: at, Seq: seq, Kind: EvPacketLost, Node: int32(dst.Node), Port: -1, Client: int8(dst.Kind), Aux: int64(reason)})
}

// WatchdogFire records the end-to-end counter watchdog finding the wait
// (counter ctr on client c reaching target) still incomplete at its
// deadline and entering recovery.
func (r *Recorder) WatchdogFire(c packet.Client, ctr packet.CounterID, target uint64, at sim.Time) {
	if r == nil {
		return
	}
	r.add(Event{At: at, Seq: target, Kind: EvWatchdogFire, Node: int32(c.Node), Port: -1, Client: int8(c.Kind), Aux: int64(ctr)})
}

// Reissue records the recovery path re-sending the lost counted write
// seq (its original sequence number) toward dst.
func (r *Recorder) Reissue(seq uint64, dst packet.Client, ctr packet.CounterID, at sim.Time) {
	if r == nil {
		return
	}
	r.add(Event{At: at, Seq: seq, Kind: EvReissue, Node: int32(dst.Node), Port: -1, Client: int8(dst.Kind), Aux: int64(ctr)})
}

// Degraded records a wait on client c completing in degraded mode:
// missing increments from permanently dead sources were synthesized so
// the timestep could proceed.
func (r *Recorder) Degraded(c packet.Client, ctr packet.CounterID, missing uint64, at sim.Time) {
	if r == nil {
		return
	}
	r.add(Event{At: at, Seq: missing, Kind: EvDegraded, Node: int32(c.Node), Port: -1, Client: int8(c.Kind), Aux: int64(ctr)})
}

// Span records a labelled machine-wide phase interval.
func (r *Recorder) Span(label string, start, end sim.Time) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, PhaseSpan{Label: label, Start: start, End: end})
}

// Events returns the recorded events sorted by timestamp (stable, so
// events recorded at the same instant keep their deterministic recording
// order).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := append([]Event(nil), r.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Spans returns the recorded phase spans in recording order.
func (r *Recorder) Spans() []PhaseSpan {
	if r == nil {
		return nil
	}
	return append([]PhaseSpan(nil), r.spans...)
}

// CounterWaits returns the number of counter waits armed and fired.
func (r *Recorder) CounterWaits() (armed, fired uint64) {
	if r == nil {
		return 0, 0
	}
	return r.armed, r.fired
}

// Links returns the per-link counters keyed by (node, port), with keys
// sorted for deterministic iteration.
func (r *Recorder) Links() []LinkRecord {
	if r == nil {
		return nil
	}
	out := make([]LinkRecord, 0, len(r.links))
	for k, v := range r.links {
		out = append(out, LinkRecord{Key: k, LinkCounters: *v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Node != out[j].Key.Node {
			return out[i].Key.Node < out[j].Key.Node
		}
		return out[i].Key.Port < out[j].Key.Port
	})
	return out
}

// LinkRecord is one link's counters together with its identity.
type LinkRecord struct {
	Key LinkKey
	LinkCounters
}

// AntonLatencies returns the end-to-end (inject -> deliver) latency of
// every Anton packet delivery, in delivery order. Multicast packets
// contribute one sample per destination reached.
func (r *Recorder) AntonLatencies() []sim.Dur {
	return r.latencies(EvInject, EvDeliver)
}

// ClusterLatencies returns the software-to-software latency of every
// cluster message, in delivery order (timeout-and-retransmit recoveries
// included).
func (r *Recorder) ClusterLatencies() []sim.Dur {
	return r.latencies(EvClusterSend, EvClusterDeliver)
}

func (r *Recorder) latencies(send, deliver EventKind) []sim.Dur {
	if r == nil {
		return nil
	}
	starts := make(map[uint64]sim.Time)
	var out []sim.Dur
	for _, e := range r.Events() {
		switch e.Kind {
		case send:
			if _, ok := starts[e.Seq]; !ok {
				starts[e.Seq] = e.At
			}
		case deliver:
			if t0, ok := starts[e.Seq]; ok {
				out = append(out, e.At.Sub(t0))
			}
		}
	}
	return out
}
