package metrics_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"anton/internal/harness"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current metrics output")

// TestGoldenArtifacts pins every artifact of the metrics experiment: the
// rendered text report (what `antonbench metrics` prints), the
// machine-readable BENCH_metrics.json payload, and the chrome://tracing
// export of the scripted trace scenario. All three are fully
// deterministic — integer-picosecond simulation, stable sorts, fixed
// formatting — so any diff means the performance model or the
// observability layer itself changed. After an intentional change,
// regenerate with:
//
//	go test ./internal/metrics -run Golden -update
func TestGoldenArtifacts(t *testing.T) {
	a := harness.MetricsArtifacts(true)
	for _, g := range []struct {
		file string
		got  []byte
	}{
		{"report.golden", []byte(a.Report)},
		{"bench.golden.json", a.BenchJSON},
		{"trace.golden.json", a.Trace},
	} {
		path := filepath.Join("testdata", g.file)
		if *update {
			if err := os.WriteFile(path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with: go test ./internal/metrics -run Golden -update)", err)
		}
		if string(g.got) != string(want) {
			t.Errorf("%s drifted from %s — if the change is intentional, regenerate with -update\n--- got ---\n%s\n--- want ---\n%s",
				g.file, path, g.got, want)
		}
	}
}
