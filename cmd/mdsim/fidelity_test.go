package main

import (
	"strings"
	"testing"
)

// TestFidelityGate pins the -fidelity error paths of the mdsim CLI:
// unknown tiers are rejected with a clear message, and analytic is
// refused outright — the trajectory product is inherently event-driven —
// with a pointer to the experiment that does answer closed-form
// step-time queries.
func TestFidelityGate(t *testing.T) {
	cases := []struct {
		name     string
		fidelity string
		wantErr  string // substring; "" means the gate accepts
	}{
		{"des-default", "des", ""},
		{"unknown-tier", "approximate", `unknown fidelity "approximate"`},
		{"empty-tier", "", "unknown fidelity"},
		{"case-sensitive", "Analytic", "unknown fidelity"},
		{"analytic-refused", "analytic", "step-by-step trajectory"},
		{"analytic-pointer", "analytic", "antonbench -fidelity analytic fastpath"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := fidelityGate(tc.fidelity)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want accept, got: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
