// Command mdsim runs a molecular dynamics simulation end to end: the real
// (sequential) MD engine produces physics, while the same workload mapped
// onto the simulated Anton machine produces per-step communication and
// timing measurements.
//
// Usage:
//
//	mdsim [-atoms 23558] [-steps 10] [-torus 8x8x8] [-seed 1]
//	      [-thermostat] [-migrate 8] [-engine-molecules 64] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"anton/internal/machine"
	"anton/internal/md"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/sim"
	"anton/internal/topo"
)

func main() {
	atoms := flag.Int("atoms", 23558, "atoms in the parallel timing model")
	steps := flag.Int("steps", 10, "time steps to simulate on the machine")
	torusFlag := flag.String("torus", "8x8x8", "machine torus XxYxZ")
	seed := flag.Int64("seed", 1, "workload seed")
	thermostat := flag.Bool("thermostat", true, "enable temperature control")
	migrate := flag.Int("migrate", 8, "migration interval in steps (0 = off)")
	engineMol := flag.Int("engine-molecules", 64, "molecules for the physical engine demo (0 = skip)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"goroutines for the MD force kernels (1 = sequential; results are bit-identical for any value)")
	flag.Parse()

	var tx, ty, tz int
	if _, err := fmt.Sscanf(*torusFlag, "%dx%dx%d", &tx, &ty, &tz); err != nil {
		fmt.Fprintf(os.Stderr, "mdsim: bad torus %q\n", *torusFlag)
		os.Exit(1)
	}

	if *engineMol > 0 {
		fmt.Printf("=== physical MD engine (%d molecules, sequential) ===\n", *engineMol)
		sys := md.Build(md.Config{Molecules: *engineMol, Temperature: 1.0, Seed: *seed, Workers: *workers})
		in := md.NewIntegrator(sys, 0.002)
		in.Thermostat = *thermostat
		in.TargetT = 1.0
		in.LongRangeInterval = 2
		in.ComputeForces()
		fmt.Printf("%6s %14s %14s %10s\n", "step", "potential", "total energy", "temp")
		for i := 0; i <= 50; i += 10 {
			if i > 0 {
				in.Run(10)
			}
			fmt.Printf("%6d %14.4f %14.4f %10.4f\n",
				in.StepCount(), in.E.Potential(), in.TotalEnergy(), sys.Temperature())
		}
		fmt.Println()
	}

	fmt.Printf("=== %d-atom workload on a %s Anton machine ===\n", *atoms, *torusFlag)
	s := sim.New()
	m := machine.New(s, topo.NewTorus(tx, ty, tz), noc.DefaultModel())
	cfg := mdmap.DefaultConfig()
	cfg.Atoms = *atoms
	cfg.Seed = *seed
	cfg.ThermostatOn = *thermostat
	cfg.MigrationInterval = *migrate
	cfg.Workers = *workers
	if tx < 8 {
		cfg.GridN = 16
	}
	mp := mdmap.New(s, m, cfg)
	fmt.Printf("%d bond-term deliveries/step, %d position packets/node, ~%d range-limited pairs/node\n\n",
		mp.BondInstances(), mp.PosPackets(), mp.PairsPerNode())
	fmt.Printf("%6s %-14s %10s %10s %8s %8s %8s %8s\n",
		"step", "kind", "total", "comm", "fft", "thermo", "migr", "sent/node")
	var sumTotal, sumComm sim.Dur
	for i := 0; i < *steps; i++ {
		st := mp.RunStep()
		sumTotal += st.Total
		sumComm += st.Comm
		fmt.Printf("%6d %-14v %9.2fus %9.2fus %7.2fus %7.2fus %7.2fus %8.0f\n",
			i+1, st.Kind, st.Total.Us(), st.Comm.Us(), st.FFT.Us(), st.Thermo.Us(), st.Migr.Us(), st.SentPerNode)
	}
	n := sim.Dur(*steps)
	fmt.Printf("\naverage: total %.2f us/step, critical-path communication %.2f us/step\n",
		(sumTotal / n).Us(), (sumComm / n).Us())
}
