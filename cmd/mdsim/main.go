// Command mdsim runs a molecular dynamics simulation end to end: the real
// (sequential) MD engine produces physics, while the same workload mapped
// onto the simulated Anton machine produces per-step communication and
// timing measurements.
//
// Usage:
//
//	mdsim [-atoms 23558] [-steps 10] [-torus 8x8x8] [-seed 1]
//	      [-thermostat] [-migrate 8] [-engine-molecules 64] [-workers N]
//	      [-faults PLAN] [-checkpoint-out FILE] [-restore FILE]
//	      [-fidelity des]
//
// mdsim is inherently event-driven: it produces a step-by-step physics
// and timing trajectory, which the closed-form analytic tier cannot
// answer. -fidelity exists for CLI symmetry and accepts only des;
// analytic step-time queries live in 'antonbench -fidelity analytic
// fastpath'.
//
// A fault plan perturbs the machine simulator with seeded deterministic
// faults, including permanent link/node kills survived by fault-aware
// rerouting and watchdog recovery:
//
//	mdsim -faults 'seed=9,killlink=0:X+@2us,wdog=15us'
//
// -checkpoint-out writes a versioned binary snapshot of the completed
// run. -restore rebuilds the snapshot's configuration, deterministically
// replays it up to the snapshot step — verifying every replayed row, the
// simulated clock, and the MD engine state against the snapshot — and
// then continues to -steps. Killing a run at step N and restoring is
// bit-identical to never having killed it, at any -workers setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"

	"anton/internal/checkpoint"
	"anton/internal/fault"
	"anton/internal/harness"
	"anton/internal/machine"
	"anton/internal/md"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/sim"
	"anton/internal/topo"
)

// config is everything that determines the run's trajectory (the
// -workers and -steps flags deliberately excluded: worker count never
// changes a result, and step count only truncates it). A snapshot
// carries the config, making it self-describing.
type config struct {
	atoms      int
	torus      string
	seed       int64
	thermostat bool
	migrate    int
	engineMol  int
	faults     string
}

func (c config) fields() map[string]string {
	return map[string]string{
		"atoms":            strconv.Itoa(c.atoms),
		"torus":            c.torus,
		"seed":             strconv.FormatInt(c.seed, 10),
		"thermostat":       strconv.FormatBool(c.thermostat),
		"migrate":          strconv.Itoa(c.migrate),
		"engine-molecules": strconv.Itoa(c.engineMol),
		"faults":           c.faults,
	}
}

func configFromFields(f map[string]string) (config, error) {
	var c config
	var err error
	get := func(name string) string {
		v, ok := f[name]
		if !ok && err == nil {
			err = fmt.Errorf("snapshot is missing configuration field %q", name)
		}
		return v
	}
	c.atoms, _ = strconv.Atoi(get("atoms"))
	c.torus = get("torus")
	c.seed, _ = strconv.ParseInt(get("seed"), 10, 64)
	c.thermostat, _ = strconv.ParseBool(get("thermostat"))
	c.migrate, _ = strconv.Atoi(get("migrate"))
	c.engineMol, _ = strconv.Atoi(get("engine-molecules"))
	c.faults = get("faults")
	return c, err
}

func main() {
	atoms := flag.Int("atoms", 23558, "atoms in the parallel timing model")
	steps := flag.Int("steps", 10, "time steps to simulate on the machine")
	torusFlag := flag.String("torus", "8x8x8", "machine torus XxYxZ")
	seed := flag.Int64("seed", 1, "workload seed")
	thermostat := flag.Bool("thermostat", true, "enable temperature control")
	migrate := flag.Int("migrate", 8, "migration interval in steps (0 = off)")
	engineMol := flag.Int("engine-molecules", 64, "molecules for the physical engine demo (0 = skip)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"goroutines for the MD force kernels (1 = sequential; results are bit-identical for any value)")
	faults := flag.String("faults", "",
		"fault plan for the machine simulator (e.g. seed=9,killlink=0:X+@2us,killnode=5@0ns,wdog=15us)")
	ckptOut := flag.String("checkpoint-out", "",
		"write a versioned snapshot of the completed run to this file")
	restore := flag.String("restore", "",
		"restore from a snapshot: rebuild its configuration, replay (verifying) to its step, then continue to -steps")
	fidelityFlag := flag.String("fidelity", harness.FidelityDES,
		"simulation tier: only des — the trajectory is inherently event-driven (analytic step queries: antonbench fastpath)")
	flag.Parse()

	if err := fidelityGate(*fidelityFlag); err != nil {
		fatal(err)
	}

	cfg := config{
		atoms: *atoms, torus: *torusFlag, seed: *seed, thermostat: *thermostat,
		migrate: *migrate, engineMol: *engineMol, faults: *faults,
	}
	var snap *checkpoint.State
	if *restore != "" {
		st, err := checkpoint.ReadFile(*restore)
		if err != nil {
			fatal(err)
		}
		if st.Kind != "mdsim" {
			fatal(fmt.Errorf("snapshot %s was written by %q, not mdsim", *restore, st.Kind))
		}
		if int64(*steps) < st.Step {
			fatal(fmt.Errorf("-steps %d is before the snapshot's step %d", *steps, st.Step))
		}
		if cfg, err = configFromFields(st.Fields); err != nil {
			fatal(err)
		}
		snap = st
	}
	if err := run(cfg, *steps, *workers, snap, *ckptOut, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mdsim: %v\n", err)
	os.Exit(1)
}

// fidelityGate validates the -fidelity value. mdsim's product is a
// step-by-step trajectory — bit-exact physics plus per-step machine
// timings — which only the event-driven tier produces, so analytic is
// refused with a pointer to the experiment that does answer closed-form
// step-time queries.
func fidelityGate(fidelity string) error {
	f, err := harness.ParseFidelity(fidelity)
	if err != nil {
		return fmt.Errorf("-fidelity: %v", err)
	}
	if f == harness.FidelityAnalytic {
		return fmt.Errorf("-fidelity analytic: mdsim produces a step-by-step trajectory the closed-form tier cannot answer; use 'antonbench -fidelity analytic fastpath' for analytic step-time queries")
	}
	return nil
}

// engineRow formats one physical-engine progress row.
func engineRow(step int, potential, total, temp float64) string {
	return fmt.Sprintf("%6d %14.4f %14.4f %10.4f", step, potential, total, temp)
}

// stepRow formats one machine-workload step row.
func stepRow(step int, st mdmap.StepTiming) string {
	return fmt.Sprintf("%6d %-14v %9.2fus %9.2fus %7.2fus %7.2fus %7.2fus %8.0f",
		step, st.Kind, st.Total.Us(), st.Comm.Us(), st.FFT.Us(), st.Thermo.Us(), st.Migr.Us(), st.SentPerNode)
}

func run(cfg config, steps, workers int, snap *checkpoint.State, ckptOut string, out io.Writer) error {
	var tx, ty, tz int
	if _, err := fmt.Sscanf(cfg.torus, "%dx%dx%d", &tx, &ty, &tz); err != nil {
		return fmt.Errorf("bad torus %q", cfg.torus)
	}
	var plan *fault.Plan
	if cfg.faults != "" {
		p, err := fault.ParsePlan(cfg.faults)
		if err != nil {
			return fmt.Errorf("-faults: %v", err)
		}
		if err := p.ValidateTopo(tx * ty * tz); err != nil {
			return err
		}
		plan = &p
	}

	// Every data row goes through emit: printed, recorded for the
	// snapshot, and — when restoring — verified against the snapshot's
	// recorded history so any divergence is detected, not propagated.
	var rows []string
	emit := func(row string) error {
		if snap != nil && len(rows) < len(snap.Rows) && snap.Rows[len(rows)] != row {
			return fmt.Errorf("restore: replay diverged from the snapshot at row %d:\n  snapshot: %q\n  replayed: %q",
				len(rows), snap.Rows[len(rows)], row)
		}
		rows = append(rows, row)
		fmt.Fprintln(out, row)
		return nil
	}

	var floats []float64
	if cfg.engineMol > 0 {
		fmt.Fprintf(out, "=== physical MD engine (%d molecules, sequential) ===\n", cfg.engineMol)
		sys := md.Build(md.Config{Molecules: cfg.engineMol, Temperature: 1.0, Seed: cfg.seed, Workers: workers})
		in := md.NewIntegrator(sys, 0.002)
		in.Thermostat = cfg.thermostat
		in.TargetT = 1.0
		in.LongRangeInterval = 2
		in.ComputeForces()
		fmt.Fprintf(out, "%6s %14s %14s %10s\n", "step", "potential", "total energy", "temp")
		for i := 0; i <= 50; i += 10 {
			if i > 0 {
				in.Run(10)
			}
			if err := emit(engineRow(in.StepCount(), in.E.Potential(), in.TotalEnergy(), sys.Temperature())); err != nil {
				return err
			}
		}
		fmt.Fprintln(out)
		for _, p := range sys.Pos {
			floats = append(floats, p.X, p.Y, p.Z)
		}
		for _, v := range sys.Vel {
			floats = append(floats, v.X, v.Y, v.Z)
		}
	}
	if snap != nil {
		if len(snap.Floats) != len(floats) {
			return fmt.Errorf("restore: engine state has %d values, snapshot has %d", len(floats), len(snap.Floats))
		}
		for i, v := range floats {
			if math.Float64bits(v) != math.Float64bits(snap.Floats[i]) {
				return fmt.Errorf("restore: engine state value %d diverged: %v vs snapshot %v", i, v, snap.Floats[i])
			}
		}
	}

	fmt.Fprintf(out, "=== %d-atom workload on a %s Anton machine ===\n", cfg.atoms, cfg.torus)
	s := sim.New()
	s.SetWorkers(workers)
	if plan != nil {
		fault.Attach(s, *plan)
	}
	m := machine.New(s, topo.NewTorus(tx, ty, tz), noc.DefaultModel())
	mcfg := mdmap.DefaultConfig()
	mcfg.Atoms = cfg.atoms
	mcfg.Seed = cfg.seed
	mcfg.ThermostatOn = cfg.thermostat
	mcfg.MigrationInterval = cfg.migrate
	mcfg.Workers = workers
	if tx < 8 {
		mcfg.GridN = 16
	}
	mp := mdmap.New(s, m, mcfg)
	fmt.Fprintf(out, "%d bond-term deliveries/step, %d position packets/node, ~%d range-limited pairs/node\n\n",
		mp.BondInstances(), mp.PosPackets(), mp.PairsPerNode())
	fmt.Fprintf(out, "%6s %-14s %10s %10s %8s %8s %8s %8s\n",
		"step", "kind", "total", "comm", "fft", "thermo", "migr", "sent/node")
	var sumTotal, sumComm sim.Dur
	for i := 0; i < steps; i++ {
		st := mp.RunStep()
		sumTotal += st.Total
		sumComm += st.Comm
		if err := emit(stepRow(i+1, st)); err != nil {
			return err
		}
		if snap != nil && int64(i+1) == snap.Step && int64(s.Now()) != snap.Clock {
			return fmt.Errorf("restore: replayed clock %d ps at step %d, snapshot recorded %d ps",
				int64(s.Now()), i+1, snap.Clock)
		}
	}
	n := sim.Dur(steps)
	fmt.Fprintf(out, "\naverage: total %.2f us/step, critical-path communication %.2f us/step\n",
		(sumTotal / n).Us(), (sumComm / n).Us())

	if ckptOut != "" {
		st := &checkpoint.State{
			Kind: "mdsim", Step: int64(steps), Clock: int64(s.Now()),
			Fields: cfg.fields(), Rows: rows, Floats: floats,
		}
		if err := st.WriteFile(ckptOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote snapshot %s (step %d, %d rows)\n", ckptOut, steps, len(rows))
	}
	return nil
}
