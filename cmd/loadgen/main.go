// Command loadgen drives a deterministic request mix against an
// antonserve instance and reports client-observed latency and
// throughput (p50/p99/mean, requests per second) plus the
// order-independent response checksum that fingerprints the whole
// serving path.
//
// Usage:
//
//	loadgen [-addr http://host:8080] [-n 200] [-clients 8] [-seed 1]
//	        [-out BENCH_serve.json]
//
// With no -addr it spins an in-process server on a loopback listener —
// the self-contained mode CI's smoke stage and the committed
// BENCH_serve.json baseline use, so the measurement has no external
// moving parts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"

	"anton/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "server base URL (empty: run an in-process server)")
	n := flag.Int("n", 200, "number of requests")
	clients := flag.Int("clients", 8, "concurrent clients")
	seed := flag.Uint64("seed", 1, "mix-selection seed")
	out := flag.String("out", "", "also write the run as a BENCH_serve.json payload")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "loadgen: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	base := strings.TrimSuffix(*addr, "/")
	if base == "" {
		srv, err := serve.New(serve.Config{Sched: serve.SchedConfig{DESWorkers: 2, AnalyticWorkers: 1}})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		base = ts.URL
	}

	st, err := serve.RunLoad(base+"/api/v1", nil, serve.LoadConfig{
		Requests: *n, Clients: *clients, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("loadgen: %d requests, %d clients, seed %d\n", st.Requests, st.Clients, *seed)
	fmt.Printf("  errors            %d\n", st.Errors)
	fmt.Printf("  distinct digests  %d\n", st.DistinctDigests)
	fmt.Printf("  checksum          %s\n", st.Checksum)
	fmt.Printf("  cache             %d hits / %d misses / %d joins\n", st.CacheHits, st.CacheMisses, st.CacheJoins)
	fmt.Printf("  latency           p50 %.2f ms  p99 %.2f ms  mean %.2f ms\n", st.P50Ms, st.P99Ms, st.MeanMs)
	fmt.Printf("  throughput        %.1f req/s over %.0f ms\n", st.RPS, st.WallMs)

	if *out != "" {
		f := serve.BenchFile{Schema: serve.BenchSchema, Seed: *seed, Result: st}
		data, err := json.MarshalIndent(f, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if st.Errors > 0 {
		os.Exit(1)
	}
}
