// Command loadgen drives a deterministic request mix against an
// antonserve instance and reports client-observed latency and
// throughput (p50/p99/mean, requests per second) plus the
// order-independent response checksum that fingerprints the whole
// serving path.
//
// Usage:
//
//	loadgen [-addr http://host:8080] [-n 200] [-clients 8] [-seed 1]
//	        [-retries 0] [-backoff 50ms] [-wait-ready 0]
//	        [-extra-faults 0] [-fetch DIR] [-out BENCH_serve.json]
//
// With no -addr it spins an in-process server on a loopback listener —
// the self-contained mode CI's smoke stage and the committed
// BENCH_serve.json baseline use, so the measurement has no external
// moving parts.
//
// Against a live server the chaos-oriented flags apply: -wait-ready
// polls /readyz before driving load (a restarting server restores its
// checkpoint in the background), -retries/-backoff retry shedding
// responses (503/504, honoring Retry-After) with deterministic seeded
// jitter, -extra-faults N widens the mix with N uncached faulted DES
// variants so kills land mid-compute, and -fetch DIR downloads every
// mix digest's cached result into DIR and exits — the byte-identity
// probe the crash/restart suite compares across a kill.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"anton/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "server base URL (empty: run an in-process server)")
	n := flag.Int("n", 200, "number of requests")
	clients := flag.Int("clients", 8, "concurrent clients")
	seed := flag.Uint64("seed", 1, "mix-selection seed")
	retries := flag.Int("retries", 0, "per-request retry budget for 503/504/transport errors")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (exponential, seeded jitter)")
	waitReady := flag.Duration("wait-ready", 0, "poll /readyz this long before driving load (0: don't)")
	extraFaults := flag.Int("extra-faults", 0, "append N uncached faulted DES variants to the mix")
	fetch := flag.String("fetch", "", "fetch every mix digest's result into this directory and exit")
	out := flag.String("out", "", "also write the run as a BENCH_serve.json payload")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "loadgen: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	base := strings.TrimSuffix(*addr, "/")
	if base == "" {
		srv, err := serve.New(serve.Config{Sched: serve.SchedConfig{DESWorkers: 2, AnalyticWorkers: 1}})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		base = ts.URL
	}
	api := base + "/api/v1"

	mix := serve.DefaultMix()
	if *extraFaults > 0 {
		mix = serve.MixWithExtraFaults(*extraFaults)
	}

	if *waitReady > 0 {
		if err := serve.WaitReady(api, nil, *waitReady); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}

	if *fetch != "" {
		digests, err := serve.MixDigests(mix)
		if err == nil {
			err = serve.FetchResults(api, nil, digests, *fetch)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loadgen: fetched %d results into %s\n", len(digests), *fetch)
		return
	}

	st, err := serve.RunLoad(api, nil, serve.LoadConfig{
		Requests: *n, Clients: *clients, Seed: *seed, Mix: mix,
		Retries: *retries, Backoff: *backoff,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("loadgen: %d requests, %d clients, seed %d\n", st.Requests, st.Clients, *seed)
	fmt.Printf("  errors            %d\n", st.Errors)
	fmt.Printf("  retried           %d requests (%d extra attempts)\n", st.Retried, st.RetryAttempts)
	fmt.Printf("  distinct digests  %d\n", st.DistinctDigests)
	fmt.Printf("  checksum          %s\n", st.Checksum)
	fmt.Printf("  cache             %d hits / %d misses / %d joins\n", st.CacheHits, st.CacheMisses, st.CacheJoins)
	fmt.Printf("  latency           p50 %.2f ms  p99 %.2f ms  mean %.2f ms\n", st.P50Ms, st.P99Ms, st.MeanMs)
	fmt.Printf("  throughput        %.1f req/s over %.0f ms\n", st.RPS, st.WallMs)

	if *out != "" {
		f := serve.BenchFile{Schema: serve.BenchSchema, Seed: *seed, Result: st}
		data, err := json.MarshalIndent(f, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if st.Errors > 0 {
		os.Exit(1)
	}
}
