// Command antonserve is the simulation-as-a-service tier: a
// long-running HTTP server that accepts JSON experiment requests and
// runs them as concurrent isolated sessions of the antonbench harness,
// behind a deterministic result cache.
//
// Usage:
//
//	antonserve [-addr :8080] [-cache 256] [-checkpoint anton.ckpt]
//	           [-des-workers 1] [-analytic-workers 1] [-queue-depth 64]
//	           [-session-workers N]
//
// API (all under /api/v1):
//
//	GET    /experiments                list the experiment registry
//	POST   /run                        run synchronously; the response is
//	                                   byte-identical between a fresh run
//	                                   and a cache hit (the X-Anton-Cache
//	                                   header says which it was)
//	POST   /jobs                       submit asynchronously; returns a job id
//	GET    /jobs/{id}                  job state and sweep progress
//	GET    /jobs/{id}/stream           progress as newline-delimited JSON
//	DELETE /jobs/{id}                  cancel (queued jobs are withdrawn;
//	                                   running jobs finish and cache)
//	GET    /results/{digest}           a completed result by cache digest
//	GET    /artifacts/{digest}/bench   the run's BENCH_metrics.json
//	GET    /artifacts/{digest}/trace   the run's chrome://tracing export
//	GET    /stats                      cache counters and queue depths
//	GET    /healthz                    liveness
//
// With -checkpoint the completed result cache is persisted after every
// finished job and restored at startup, so a restarted server resumes
// with every previously computed experiment already answered.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"anton/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache", 256, "result cache bound in entries (0 = unbounded)")
	checkpointPath := flag.String("checkpoint", "", "persist/restore the result cache at this path")
	desWorkers := flag.Int("des-workers", 1, "event-driven queue worker pool size")
	analyticWorkers := flag.Int("analytic-workers", 1, "analytic queue worker pool size")
	queueDepth := flag.Int("queue-depth", 64, "per-fidelity queue bound (full queue answers 503)")
	sessionWorkers := flag.Int("session-workers", 1, "default per-run sweep/PDES goroutine budget")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "antonserve: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		CacheEntries:   *cacheEntries,
		CheckpointPath: *checkpointPath,
		Sched: serve.SchedConfig{
			DESWorkers:      *desWorkers,
			AnalyticWorkers: *analyticWorkers,
			QueueDepth:      *queueDepth,
			SessionWorkers:  *sessionWorkers,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "antonserve: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("antonserve: shutting down")
		hs.Close()
		// Queued jobs drain and the final checkpoint lands before exit.
		srv.Close()
		close(done)
	}()

	fmt.Printf("antonserve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "antonserve: %v\n", err)
		os.Exit(1)
	}
	<-done
}
