// Command antonserve is the simulation-as-a-service tier: a
// long-running HTTP server that accepts JSON experiment requests and
// runs them as concurrent isolated sessions of the antonbench harness,
// behind a deterministic result cache.
//
// Usage:
//
//	antonserve [-addr :8080] [-cache 256] [-checkpoint anton.ckpt]
//	           [-des-workers 1] [-analytic-workers 1] [-queue-depth 64]
//	           [-session-workers N] [-timeout 0] [-drain 15s]
//
// API (all under /api/v1):
//
//	GET    /experiments                list the experiment registry
//	POST   /run                        run synchronously; the response is
//	                                   byte-identical between a fresh run
//	                                   and a cache hit (the X-Anton-Cache
//	                                   header says which it was); a
//	                                   timeout_ms request field (or the
//	                                   -timeout default) bounds the wait
//	                                   (504 past it, nothing cached)
//	POST   /jobs                       submit asynchronously; returns a job id
//	GET    /jobs/{id}                  job state and sweep progress
//	GET    /jobs/{id}/stream           progress as newline-delimited JSON
//	DELETE /jobs/{id}                  cancel: queued jobs are withdrawn,
//	                                   running jobs abort cooperatively
//	                                   within one abort-check interval;
//	                                   cancelled runs are never cached
//	GET    /results/{digest}           a completed result by cache digest
//	GET    /artifacts/{digest}/bench   the run's BENCH_metrics.json
//	GET    /artifacts/{digest}/trace   the run's chrome://tracing export
//	GET    /stats                      cache counters, queue depths, state
//	GET    /healthz                    liveness (200 for the process lifetime)
//	GET    /readyz                     readiness (503 during startup restore
//	                                   and drain; load balancers route on this)
//
// With -checkpoint the completed result cache is persisted after every
// finished job and restored at startup — in the background: the
// listener binds immediately and /readyz flips to 200 when the restore
// lands — so a restarted server resumes with every previously computed
// experiment already answered.
//
// SIGTERM (or SIGINT) drains gracefully: readiness flips to 503,
// admission stops, in-flight and queued jobs get the -drain budget to
// finish — past it their contexts are cancelled and the cooperative
// abort stops remaining compute without caching it — the checkpoint is
// written exactly once, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anton/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache", 256, "result cache bound in entries (0 = unbounded)")
	checkpointPath := flag.String("checkpoint", "", "persist/restore the result cache at this path")
	desWorkers := flag.Int("des-workers", 1, "event-driven queue worker pool size")
	analyticWorkers := flag.Int("analytic-workers", 1, "analytic queue worker pool size")
	queueDepth := flag.Int("queue-depth", 64, "per-fidelity queue bound (full queue answers 503)")
	sessionWorkers := flag.Int("session-workers", 1, "default per-run sweep/PDES goroutine budget")
	timeout := flag.Duration("timeout", 0, "default deadline for requests without timeout_ms (0 = none)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-drain budget before in-flight work is aborted")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "antonserve: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	srv := serve.NewStarting(serve.Config{
		CacheEntries:   *cacheEntries,
		CheckpointPath: *checkpointPath,
		DefaultTimeout: *timeout,
		DrainBudget:    *drain,
		Sched: serve.SchedConfig{
			DESWorkers:      *desWorkers,
			AnalyticWorkers: *analyticWorkers,
			QueueDepth:      *queueDepth,
			SessionWorkers:  *sessionWorkers,
		},
	})
	// Restore in the background: the listener answers /healthz and
	// /readyz (503 starting) while a large checkpoint loads, and
	// admission opens the moment it lands. A corrupt or foreign
	// checkpoint is a deployment error, not something to silently
	// ignore: fail loudly.
	restored := make(chan error, 1)
	go func() { restored <- srv.Restore() }()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		if err := <-restored; err != nil {
			fmt.Fprintf(os.Stderr, "antonserve: restore: %v\n", err)
			hs.Close()
			os.Exit(1)
		}
		fmt.Println("antonserve: ready")
	}()
	go func() {
		<-sig
		fmt.Println("antonserve: draining")
		// Drain blocks until in-flight work finishes or the budget aborts
		// it, and persists the final checkpoint exactly once.
		srv.Drain()
		// Then close the listener, giving straggling response writes a
		// moment to flush.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		hs.Shutdown(ctx)
		cancel()
		close(done)
	}()

	fmt.Printf("antonserve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "antonserve: %v\n", err)
		os.Exit(1)
	}
	<-done
}
