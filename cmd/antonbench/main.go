// Command antonbench regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	antonbench [-quick] [-workers N] [-faults PLAN] [-fidelity des|analytic] list
//	antonbench [-quick] [-workers N] [-faults PLAN] <experiment-id> [...]
//	antonbench [-quick] [-workers N] [-faults PLAN] all
//	antonbench [-quick] [-bench-out BENCH_metrics.json] [-trace-out trace.json] metrics
//	antonbench [-checkpoint-out snap] [-restore snap] <experiment-id> [...]
//
// A fault plan perturbs every experiment's simulators with seeded,
// deterministic faults, including permanent link/node kills:
//
//	antonbench -faults 'seed=42,corrupt=1e-3,retry=50ns' fig5
//	antonbench -faults 'seed=9,killlink=0:X+@2us,wdog=15us' killsweep
//
// -checkpoint-out rewrites a versioned snapshot after each experiment
// completes, so a killed run loses at most the experiment in flight.
// -restore re-prints the snapshot's completed reports (verifying the
// -quick and -faults settings match) and runs only the remainder.
//
// -fidelity selects the simulation tier: des (the default) answers every
// query on the event-driven simulator; analytic answers from the
// closed-form fast-path tier (internal/analytic) for the experiments
// that support it (currently fastpath). The analytic tier models a
// fault-free machine, so it refuses -faults, and event-driven-only
// experiments refuse to run at analytic fidelity.
//
// The metrics experiment renders the measured-latency observability
// report; alongside it, -bench-out writes the machine-readable
// BENCH_metrics.json payload and -trace-out a chrome://tracing-
// compatible JSON export (open it at chrome://tracing or
// https://ui.perfetto.dev). Both files are byte-deterministic at any
// -workers setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"anton/internal/checkpoint"
	"anton/internal/fault"
	"anton/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "reduce sampling density of the expensive experiments")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"goroutines for experiment sweeps (1 = sequential; output is identical for any value)")
	faults := flag.String("faults", "",
		"fault plan applied to every experiment (e.g. seed=42,corrupt=1e-3,retry=50ns,killlink=0:X+@2us,wdog=15us)")
	benchOut := flag.String("bench-out", "",
		"write the metrics experiment's machine-readable payload (BENCH_metrics.json) to this file")
	traceOut := flag.String("trace-out", "",
		"write the metrics experiment's chrome://tracing JSON export to this file")
	ckptOut := flag.String("checkpoint-out", "",
		"rewrite a snapshot of the completed experiment reports after each one finishes")
	restore := flag.String("restore", "",
		"restore completed experiment reports from a snapshot; only the remainder is re-run")
	fidelityFlag := flag.String("fidelity", harness.FidelityDES,
		"simulation tier: des (event-driven) or analytic (closed-form fast path; fastpath only)")
	flag.Parse()
	harness.SetWorkers(*workers)
	if err := fidelityGate(*fidelityFlag, *faults, nil); err != nil {
		fmt.Fprintf(os.Stderr, "antonbench: %v\n", err)
		os.Exit(1)
	}
	if err := harness.SetFidelity(*fidelityFlag); err != nil {
		fmt.Fprintf(os.Stderr, "antonbench: -fidelity: %v\n", err)
		os.Exit(1)
	}
	if *faults != "" {
		plan, err := fault.ParsePlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "antonbench: -faults: %v\n", err)
			os.Exit(1)
		}
		// The flagship machine has 512 nodes; every experiment simulator
		// is at most that large, so kills beyond it would hit nothing.
		if err := plan.ValidateTopo(512); err != nil {
			fmt.Fprintf(os.Stderr, "antonbench: -faults: %v\n", err)
			os.Exit(1)
		}
		harness.SetFaultPlan(&plan)
	}
	args := flag.Args()
	if len(args) == 0 || args[0] == "list" {
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nrun with: antonbench [-quick] <id> [...] | all")
		return
	}
	ids := args
	if args[0] == "all" {
		// At analytic fidelity, "all" means every analytic-capable
		// experiment; the event-driven-only ones are skipped rather than
		// refused.
		ids = nil
		for _, e := range harness.Experiments() {
			if harness.Fidelity() == harness.FidelityAnalytic && !e.Analytic {
				continue
			}
			ids = append(ids, e.ID)
		}
	}
	if err := fidelityGate(*fidelityFlag, *faults, ids); err != nil {
		fmt.Fprintf(os.Stderr, "antonbench: %v\n", err)
		os.Exit(1)
	}

	// A snapshot carries the settings that determine report content plus
	// one "id\x00report" row per completed experiment, rewritten after
	// each finishes so a killed run resumes where it left off.
	fields := map[string]string{
		"quick":    strconv.FormatBool(*quick),
		"faults":   *faults,
		"fidelity": harness.Fidelity(),
	}
	done := map[string]string{}
	var rows []string
	if *restore != "" {
		st, err := checkpoint.ReadFile(*restore)
		if err != nil {
			fmt.Fprintf(os.Stderr, "antonbench: %v\n", err)
			os.Exit(1)
		}
		if st.Kind != "antonbench" {
			fmt.Fprintf(os.Stderr, "antonbench: snapshot %s was written by %q, not antonbench\n", *restore, st.Kind)
			os.Exit(1)
		}
		for k, v := range fields {
			if sv := st.Field(k); sv != v {
				fmt.Fprintf(os.Stderr, "antonbench: snapshot was taken with -%s=%q, this run has %q\n", k, sv, v)
				os.Exit(1)
			}
		}
		for _, r := range st.Rows {
			id, report, ok := strings.Cut(r, "\x00")
			if !ok {
				fmt.Fprintf(os.Stderr, "antonbench: malformed snapshot row\n")
				os.Exit(1)
			}
			done[id] = report
			rows = append(rows, r)
		}
	}
	snapshot := func() {
		if *ckptOut == "" {
			return
		}
		st := &checkpoint.State{
			Kind: "antonbench", Step: int64(len(rows)), Fields: fields, Rows: rows,
		}
		if err := st.WriteFile(*ckptOut); err != nil {
			fmt.Fprintf(os.Stderr, "antonbench: %v\n", err)
			os.Exit(1)
		}
	}

	for _, id := range ids {
		e, ok := harness.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "antonbench: unknown experiment %q (try: antonbench list)\n", id)
			os.Exit(1)
		}
		if report, ok := done[id]; ok {
			fmt.Println(report)
			fmt.Printf("[%s restored from snapshot]\n\n", e.ID)
			continue
		}
		start := time.Now()
		var report string
		if e.HasArtifacts() && (*benchOut != "" || *traceOut != "") {
			// Experiments with machine-readable artifacts beyond the report
			// (currently metrics) run once and write everything asked for.
			a := e.ArtifactsWith(harness.NewSession(), *quick)
			report = a.Report
			fmt.Println(report)
			writeArtifact(*benchOut, a.BenchJSON)
			writeArtifact(*traceOut, a.Trace)
		} else {
			report = e.Run(*quick)
			fmt.Println(report)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		done[id] = report
		rows = append(rows, id+"\x00"+report)
		snapshot()
	}
}

// fidelityGate validates the -fidelity value against the other flags and
// the requested experiments before anything runs: the analytic tier
// models a fault-free machine (so fault plans and kill scenarios are
// refused, not silently ignored), and experiments without a closed-form
// tier refuse to answer at analytic fidelity.
func fidelityGate(fidelity, faults string, ids []string) error {
	f, err := harness.ParseFidelity(fidelity)
	if err != nil {
		return fmt.Errorf("-fidelity: %v", err)
	}
	if f != harness.FidelityAnalytic {
		return nil
	}
	if faults != "" {
		return fmt.Errorf("-fidelity analytic models a fault-free machine and refuses fault plans; drop -faults or use -fidelity des")
	}
	for _, id := range ids {
		if e, ok := harness.Lookup(id); ok && !e.Analytic {
			return fmt.Errorf("experiment %q is event-driven only and has no analytic tier; run it with -fidelity des", id)
		}
	}
	return nil
}

func writeArtifact(path string, data []byte) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "antonbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
}
