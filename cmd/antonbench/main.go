// Command antonbench regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	antonbench [-quick] [-workers N] [-faults PLAN] list
//	antonbench [-quick] [-workers N] [-faults PLAN] <experiment-id> [...]
//	antonbench [-quick] [-workers N] [-faults PLAN] all
//	antonbench [-quick] [-bench-out BENCH_metrics.json] [-trace-out trace.json] metrics
//
// A fault plan perturbs every experiment's simulators with seeded,
// deterministic faults, e.g.:
//
//	antonbench -faults 'seed=42,corrupt=1e-3,retry=50ns' fig5
//
// The metrics experiment renders the measured-latency observability
// report; alongside it, -bench-out writes the machine-readable
// BENCH_metrics.json payload and -trace-out a chrome://tracing-
// compatible JSON export (open it at chrome://tracing or
// https://ui.perfetto.dev). Both files are byte-deterministic at any
// -workers setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"anton/internal/fault"
	"anton/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "reduce sampling density of the expensive experiments")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"goroutines for experiment sweeps (1 = sequential; output is identical for any value)")
	faults := flag.String("faults", "",
		"fault plan applied to every experiment (e.g. seed=42,corrupt=1e-3,retry=50ns,drop=1e-3,timeout=10us)")
	benchOut := flag.String("bench-out", "",
		"write the metrics experiment's machine-readable payload (BENCH_metrics.json) to this file")
	traceOut := flag.String("trace-out", "",
		"write the metrics experiment's chrome://tracing JSON export to this file")
	flag.Parse()
	harness.SetWorkers(*workers)
	if *faults != "" {
		plan, err := fault.ParsePlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "antonbench: -faults: %v\n", err)
			os.Exit(1)
		}
		harness.SetFaultPlan(&plan)
	}
	args := flag.Args()
	if len(args) == 0 || args[0] == "list" {
		fmt.Println("experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nrun with: antonbench [-quick] <id> [...] | all")
		return
	}
	ids := args
	if args[0] == "all" {
		ids = nil
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, ok := harness.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "antonbench: unknown experiment %q (try: antonbench list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		if id == "metrics" && (*benchOut != "" || *traceOut != "") {
			// The metrics experiment has machine-readable artifacts beyond
			// its report; run it once and write everything asked for.
			a := harness.MetricsArtifacts(*quick)
			fmt.Println(a.Report)
			writeArtifact(*benchOut, a.BenchJSON)
			writeArtifact(*traceOut, a.Trace)
		} else {
			fmt.Println(e.Run(*quick))
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
	}
}

func writeArtifact(path string, data []byte) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "antonbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
}
