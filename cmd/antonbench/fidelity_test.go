package main

import (
	"strings"
	"testing"

	"anton/internal/fault"
	"anton/internal/harness"
)

// TestFidelityGate pins the -fidelity error paths: unknown tiers are
// rejected with a clear message, and the analytic tier refuses the
// combinations it cannot model (fault plans, kill scenarios,
// event-driven-only experiments) instead of silently answering.
func TestFidelityGate(t *testing.T) {
	cases := []struct {
		name             string
		fidelity, faults string
		ids              []string
		wantErr          string // substring; "" means the gate accepts
	}{
		{"des-default", "des", "", []string{"fig5", "fastpath"}, ""},
		{"analytic-fastpath", "analytic", "", []string{"fastpath"}, ""},
		{"des-with-faults", "des", "seed=42,corrupt=1e-3", []string{"faultsweep"}, ""},
		{"unknown-tier", "quantum", "", nil, `unknown fidelity "quantum"`},
		{"empty-tier", "", "", nil, "unknown fidelity"},
		{"case-sensitive", "DES", "", nil, "unknown fidelity"},
		{"analytic-fault-plan", "analytic", "seed=42,corrupt=1e-3,retry=50ns", []string{"fastpath"}, "refuses fault plans"},
		{"analytic-kill-scenario", "analytic", "seed=9,killlink=0:X+@2us,wdog=15us", []string{"fastpath"}, "refuses fault plans"},
		{"analytic-des-only-experiment", "analytic", "", []string{"fig5"}, "event-driven only"},
		{"analytic-mixed-ids", "analytic", "", []string{"fastpath", "killsweep"}, "event-driven only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := fidelityGate(tc.fidelity, tc.faults, tc.ids)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want accept, got: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestFastpathRefusesFaultPlan: the fastpath experiment itself refuses
// to answer under an installed fault plan rather than comparing a
// faulted event simulator against the fault-free closed form.
func TestFastpathRefusesFaultPlan(t *testing.T) {
	plan := fault.MustParsePlan("seed=9,killlink=0:X+@2us,wdog=15us")
	harness.SetFaultPlan(&plan)
	defer harness.SetFaultPlan(nil)
	e, ok := harness.Lookup("fastpath")
	if !ok {
		t.Fatal("experiment fastpath not registered")
	}
	got := e.Run(true)
	if !strings.Contains(got, "refused") {
		t.Fatalf("fastpath under a kill plan should refuse; got:\n%s", got)
	}
}
