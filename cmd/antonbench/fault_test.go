package main

import (
	"os"
	"path/filepath"
	"testing"

	"anton/internal/fault"
	"anton/internal/harness"
)

// A zero-rate fault plan must be a perfect no-op: with an injector
// attached to every experiment simulator but all rates zero, the fig6
// and table1 reports must match their golden files byte for byte. This
// is the acceptance gate for the fault layer's wiring — the models
// consult the injector on every traversal, so any scheduling
// perturbation (an extra event, a reordered draw, a float detour) would
// shift a latency and break the comparison.
func TestZeroRatePlanGoldenIdentity(t *testing.T) {
	plan := fault.MustParsePlan("seed=7")
	if !plan.IsZero() {
		t.Fatalf("plan %v should be zero-rate", plan)
	}
	harness.SetFaultPlan(&plan)
	defer harness.SetFaultPlan(nil)
	for _, id := range []string{"fig6", "table1"} {
		e, ok := harness.Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		got := e.Run(false)
		want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("%s under a zero-rate fault plan differs from the fault-free golden\n--- got ---\n%s--- want ---\n%s",
				id, got, want)
		}
	}
}
