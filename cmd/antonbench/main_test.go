package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"anton/internal/harness"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current experiment output")

// TestGoldenReports pins the rendered text of two cheap experiments. The
// reports are fully deterministic — the simulator has no real-time or
// random inputs, and sweep parallelism never changes a byte of output —
// so any diff means the performance model itself changed. After an
// intentional model change, regenerate with:
//
//	go test ./cmd/antonbench -run Golden -update
func TestGoldenReports(t *testing.T) {
	for _, id := range []string{"fig6", "table1"} {
		e, ok := harness.Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		got := e.Run(false)
		path := filepath.Join("testdata", id+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with: go test ./cmd/antonbench -run Golden -update)", err)
		}
		if got != string(want) {
			t.Errorf("%s report drifted from %s — if the model change is intentional, regenerate with -update\n--- got ---\n%s--- want ---\n%s",
				id, path, got, want)
		}
	}
}

// TestKillsweepGolden pins the hard-failure recovery experiment's quick
// report: the Anton vs InfiniBand kill sweep's recovery costs, tallies,
// and detour latencies. Any diff means the recovery machinery (routing
// tables, watchdog, failover) changed behaviour. Quick mode keeps the
// run cheap; the full sweep is covered by the harness determinism test.
func TestKillsweepGolden(t *testing.T) {
	e, ok := harness.Lookup("killsweep")
	if !ok {
		t.Fatal("experiment killsweep not registered")
	}
	got := e.Run(true)
	path := filepath.Join("testdata", "killsweep.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./cmd/antonbench -run Killsweep -update)", err)
	}
	if got != string(want) {
		t.Errorf("killsweep report drifted from %s — if the recovery-model change is intentional, regenerate with -update\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestFastpathGolden pins the analytic fast-path validation report in
// both fidelities. The des-fidelity report cross-checks every analytic
// answer against the event simulator with per-row error columns (any
// non-"exact" network cell or out-of-bound step cell is a tier
// divergence), and the analytic-fidelity report pins the closed-form
// answers and the calibration fit on their own. Regenerate after an
// intentional model change with:
//
//	go test ./cmd/antonbench -run Fastpath -update
func TestFastpathGolden(t *testing.T) {
	e, ok := harness.Lookup("fastpath")
	if !ok {
		t.Fatal("experiment fastpath not registered")
	}
	for _, fidelity := range []string{harness.FidelityDES, harness.FidelityAnalytic} {
		if err := harness.SetFidelity(fidelity); err != nil {
			t.Fatal(err)
		}
		got := e.Run(true)
		name := "fastpath"
		if fidelity == harness.FidelityAnalytic {
			name = "fastpath-analytic"
		}
		path := filepath.Join("testdata", name+".golden")
		if *update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with: go test ./cmd/antonbench -run Fastpath -update)", err)
		}
		if got != string(want) {
			t.Errorf("%s report drifted from %s — if the model change is intentional, regenerate with -update\n--- got ---\n%s--- want ---\n%s",
				name, path, got, want)
		}
	}
	if err := harness.SetFidelity(harness.FidelityDES); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsZeroOverheadIdentity pins the observability layer's
// determinism contract against the golden reports: with a lifecycle
// recorder attached to every harness simulator, fig6 and table1 must
// reproduce the metrics-off goldens byte for byte. Recording is purely
// passive — it never schedules events — so if this test fails, the
// metrics layer has started perturbing simulation results.
func TestMetricsZeroOverheadIdentity(t *testing.T) {
	harness.SetMetrics(true)
	defer harness.SetMetrics(false)
	for _, id := range []string{"fig6", "table1"} {
		e, ok := harness.Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		got := e.Run(false)
		want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("%s with metrics enabled differs from the metrics-off golden: recording perturbed the simulation\n--- got ---\n%s--- want ---\n%s",
				id, got, want)
		}
	}
}
