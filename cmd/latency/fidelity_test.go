package main

import (
	"strings"
	"testing"
)

// TestFidelityGate pins the -fidelity error paths of the latency CLI:
// unknown tiers are rejected with a clear message, and the analytic
// tier refuses fault plans (it models a fault-free machine) and trace
// exports (it runs no events).
func TestFidelityGate(t *testing.T) {
	cases := []struct {
		name                      string
		fidelity, faults, traceIn string
		wantErr                   string // substring; "" means the gate accepts
	}{
		{"des-default", "des", "", "", ""},
		{"des-with-faults", "des", "seed=7,corrupt=0.1,retry=50ns", "", ""},
		{"des-with-trace", "des", "", "trace.json", ""},
		{"analytic-plain", "analytic", "", "", ""},
		{"unknown-tier", "exact", "", "", `unknown fidelity "exact"`},
		{"empty-tier", "", "", "", "unknown fidelity"},
		{"analytic-fault-plan", "analytic", "seed=7,corrupt=0.1", "", "refuses fault plans"},
		{"analytic-kill-scenario", "analytic", "seed=9,killlink=0:X+@2us,wdog=15us", "", "refuses fault plans"},
		{"analytic-trace", "analytic", "", "trace.json", "no event stream to trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := fidelityGate(tc.fidelity, tc.faults, tc.traceIn)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want accept, got: %v", err)
				}
				if f != tc.fidelity {
					t.Fatalf("canonical fidelity %q, want %q", f, tc.fidelity)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestAnalyticMatchesMeasure: the CLI's analytic path must answer
// exactly what its event-driven path measures (the tier's differential
// contract, exercised through the command's own helpers).
func TestAnalyticMatchesMeasure(t *testing.T) {
	tor, err := parseTorus("4x4x4")
	if err != nil {
		t.Fatal(err)
	}
	from, _ := parseCoord("0,0,0")
	to, _ := parseCoord("1,2,0")
	for _, bytes := range []int{0, 64, 256} {
		des, _, _ := measure(tor, from, to, bytes, 1, nil, false)
		an := analyticLatency(tor, from, to, bytes)
		if an != des {
			t.Errorf("%dB: analytic %v, DES %v", bytes, an, des)
		}
	}
}
