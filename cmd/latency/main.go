// Command latency is the ping/ping-pong latency microbenchmark: it
// measures one-way counted-remote-write latency between two nodes of a
// simulated Anton machine, the measurement behind Figures 5 and 6 and
// Table 1.
//
// Usage:
//
//	latency [-torus 8x8x8] [-from 0,0,0] [-to 1,0,0] [-bytes 0] [-sweep] [-workers N] [-faults PLAN] [-trace-out FILE] [-fidelity des|analytic]
//
// A fault plan injects seeded, deterministic faults into the measured
// path, e.g. -faults 'seed=7,corrupt=0.1,retry=50ns' shows the retry
// cost on the measured link.
//
// -fidelity analytic answers from the closed-form fast-path tier
// (internal/analytic) instead of running the event simulator — exact on
// every route by the tier's differential contract, and orders of
// magnitude faster. The analytic tier models a fault-free machine and
// runs no events, so it refuses -faults and -trace-out.
//
// -trace-out writes a chrome://tracing-compatible JSON export of the
// measured run (open it at chrome://tracing or https://ui.perfetto.dev):
// every lifecycle event of the measured packet — injection, per-hop link
// serialization, delivery, counter arm/fire — on its own process/thread
// rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"anton/internal/analytic"
	"anton/internal/fault"
	"anton/internal/harness"
	"anton/internal/machine"
	"anton/internal/metrics"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/par"
	"anton/internal/sim"
	"anton/internal/topo"
)

// fidelityGate validates the -fidelity value against the flags the
// analytic tier cannot honour: it models a fault-free machine (no fault
// plans) and runs no events (nothing to trace).
func fidelityGate(fidelity, faults, traceOut string) (string, error) {
	f, err := harness.ParseFidelity(fidelity)
	if err != nil {
		return "", fmt.Errorf("-fidelity: %v", err)
	}
	if f == harness.FidelityAnalytic {
		if faults != "" {
			return "", fmt.Errorf("-fidelity analytic models a fault-free machine and refuses fault plans; drop -faults or use -fidelity des")
		}
		if traceOut != "" {
			return "", fmt.Errorf("-fidelity analytic computes the latency in closed form with no event stream to trace; drop -trace-out or use -fidelity des")
		}
	}
	return f, nil
}

// analyticLatency answers the one-way write latency from the closed-form
// tier — exact vs the event simulator by the differential contract.
func analyticLatency(tor topo.Torus, from, to topo.Coord, bytes int) sim.Dur {
	return analytic.NewAnton(tor).WriteLatency(from, to, bytes)
}

func parseCoord(s string) (topo.Coord, error) {
	var x, y, z int
	if _, err := fmt.Sscanf(s, "%d,%d,%d", &x, &y, &z); err != nil {
		return topo.Coord{}, fmt.Errorf("bad coordinate %q (want x,y,z)", s)
	}
	return topo.C(x, y, z), nil
}

func parseTorus(s string) (topo.Torus, error) {
	var x, y, z int
	if _, err := fmt.Sscanf(s, "%dx%dx%d", &x, &y, &z); err != nil {
		return topo.Torus{}, fmt.Errorf("bad torus %q (want XxYxZ)", s)
	}
	return topo.NewTorus(x, y, z), nil
}

func measure(tor topo.Torus, from, to topo.Coord, bytes, workers int, plan *fault.Plan, record bool) (sim.Dur, fault.Stats, *metrics.Recorder) {
	s := sim.New()
	s.SetWorkers(workers)
	if plan != nil {
		fault.Attach(s, *plan)
	}
	var rec *metrics.Recorder
	if record {
		rec = metrics.Attach(s)
	}
	m := machine.New(s, tor, noc.DefaultModel())
	src := packet.Client{Node: m.Torus.ID(from), Kind: packet.Slice0}
	dst := packet.Client{Node: m.Torus.ID(to), Kind: packet.Slice0}
	var avail sim.Time
	m.Client(dst).Wait(0, 1, func() { avail = s.Now() })
	m.Client(src).Write(dst, 0, 0, bytes)
	s.Run()
	return sim.Dur(avail), m.Faults().Stats(), rec
}

func main() {
	torusFlag := flag.String("torus", "8x8x8", "torus dimensions XxYxZ")
	fromFlag := flag.String("from", "0,0,0", "source node coordinate")
	toFlag := flag.String("to", "1,0,0", "destination node coordinate")
	bytes := flag.Int("bytes", 0, "payload size (0-256)")
	sweep := flag.Bool("sweep", false, "sweep payload sizes 0..256")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"goroutines for the payload sweep and the PDES kernel (1 = sequential; output is identical for any value)")
	faultsFlag := flag.String("faults", "",
		"fault plan for the measured machine (e.g. seed=7,corrupt=0.1,retry=50ns)")
	traceOut := flag.String("trace-out", "",
		"write a chrome://tracing JSON export of the measured run to this file")
	fidelityFlag := flag.String("fidelity", harness.FidelityDES,
		"simulation tier: des (event-driven) or analytic (closed-form fast path)")
	flag.Parse()

	fidelity, err := fidelityGate(*fidelityFlag, *faultsFlag, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}
	analytical := fidelity == harness.FidelityAnalytic

	var plan *fault.Plan
	if *faultsFlag != "" {
		p, err := fault.ParsePlan(*faultsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "latency:", err)
			os.Exit(1)
		}
		plan = &p
	}

	tor, err := parseTorus(*torusFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}
	from, err := parseCoord(*fromFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}
	to, err := parseCoord(*toFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}

	hops := tor.HopsByDim(from, to)
	fmt.Printf("torus %v, %v -> %v (%d hops: %d X, %d Y, %d Z)\n",
		tor, from, to, hops[0]+hops[1]+hops[2], hops[0], hops[1], hops[2])
	if *sweep {
		fmt.Printf("%8s %12s\n", "bytes", "latency (ns)")
		// Each payload size is measured on its own fresh machine, so the
		// sweep points run concurrently and print in index order.
		sizes := []int{0, 8, 16, 32, 64, 128, 192, 256}
		lats := make([]sim.Dur, len(sizes))
		if analytical {
			for i, b := range sizes {
				lats[i] = analyticLatency(tor, from, to, b)
			}
		} else {
			par.ParFor(par.Workers(*workers), len(sizes), func(i int) {
				lats[i], _, _ = measure(tor, from, to, sizes[i], *workers, plan, false)
			})
		}
		for i, b := range sizes {
			fmt.Printf("%8d %12.1f\n", b, lats[i].Ns())
		}
		return
	}
	var lat sim.Dur
	var stats fault.Stats
	var rec *metrics.Recorder
	if analytical {
		lat = analyticLatency(tor, from, to, *bytes)
	} else {
		lat, stats, rec = measure(tor, from, to, *bytes, *workers, plan, *traceOut != "")
	}
	fmt.Printf("one-way software-to-software latency (%dB payload): %.1f ns\n", *bytes, lat.Ns())
	if plan != nil {
		fmt.Printf("faults (plan %v): %v\n", plan, stats)
	}
	if *traceOut != "" {
		data := rec.ChromeTrace()
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "latency:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *traceOut, len(data))
	}
}
