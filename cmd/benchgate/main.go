// Command benchgate is the PDES perf-trajectory gate. It times the
// parallel event kernel on the shared benchmark workloads
// (harness.PDESBenchmarks) at a fixed set of worker counts, then
// compares host wall time per operation against the committed baseline
// BENCH_pdes.json and exits nonzero on a regression beyond the
// tolerance.
//
// Usage:
//
//	benchgate [-baseline BENCH_pdes.json] [-tolerance 0.15] [-workers 1,4,8]
//	          [-benchtime 1s] [-out fresh.json] [-update]
//
// The committed baseline pins two things with different strictness:
//
//   - events: the number of simulation events each workload fires. This
//     is a pure function of the model — identical on every host and at
//     every -workers setting — so any mismatch fails the gate exactly.
//     A deliberate model change updates it via -update.
//   - wall_ns_per_op: host wall time, inherently machine- and
//     load-dependent, gated with a relative tolerance (default 0.15,
//     overridable by the BENCH_TOLERANCE environment variable — CI
//     runners with noisy neighbours set it looser).
//
// -update rewrites the baseline from the fresh measurements instead of
// comparing, which is how both deliberate perf trajectory changes and
// model changes land.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"anton/internal/harness"
)

// benchSchema versions the BENCH_pdes.json layout.
const benchSchema = "anton-bench/v1"

// Result is one (workload, workers) measurement.
type Result struct {
	Name         string  `json:"name"`
	Workers      int     `json:"workers"`
	WallNsPerOp  int64   `json:"wall_ns_per_op"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// File is the BENCH_pdes.json payload.
type File struct {
	Schema  string   `json:"schema"`
	Results []Result `json:"results"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_pdes.json", "committed baseline to compare against (and rewrite with -update)")
	tolerance := flag.Float64("tolerance", defaultTolerance(), "relative wall-time regression that fails the gate (BENCH_TOLERANCE env overrides the default)")
	workersFlag := flag.String("workers", "1,4,8", "comma-separated PDES kernel worker counts to measure")
	benchtime := flag.String("benchtime", "1s", "minimum measurement time per (workload, workers) point")
	repeat := flag.Int("repeat", 3, "measurements per point; the minimum wall time is kept (noise robustness)")
	out := flag.String("out", "", "also write the fresh measurements to this file")
	update := flag.Bool("update", false, "rewrite the baseline from the fresh measurements instead of comparing")
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatalf("-benchtime %q: %v", *benchtime, err)
	}
	workerCounts, err := parseWorkers(*workersFlag)
	if err != nil {
		fatalf("-workers: %v", err)
	}
	if *repeat < 1 {
		fatalf("-repeat must be at least 1")
	}

	fresh := measure(workerCounts, *repeat)
	if *out != "" {
		if err := writeFile(*out, fresh); err != nil {
			fatalf("%v", err)
		}
	}
	if *update {
		if err := writeFile(*baseline, fresh); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("benchgate: wrote baseline %s (%d results)\n", *baseline, len(fresh.Results))
		return
	}

	base, err := readFile(*baseline)
	if err != nil {
		fatalf("%v (run with -update to create the baseline)", err)
	}
	if compare(base, fresh, *tolerance) {
		fmt.Println("benchgate: PASS")
		return
	}
	os.Exit(1)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}

// defaultTolerance is 0.15 unless the BENCH_TOLERANCE environment
// variable overrides it.
func defaultTolerance() float64 {
	if v := os.Getenv("BENCH_TOLERANCE"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || t < 0 {
			fatalf("BENCH_TOLERANCE=%q is not a non-negative number", v)
		}
		return t
	}
	return 0.15
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// measure times every gate workload at every worker count with the
// testing package's benchmark machinery (adaptive b.N against
// -benchtime), keeps the minimum of repeat measurements — the
// statistic least disturbed by scheduler and cache noise — and reports
// progress on stderr so CI logs show where the time goes.
func measure(workerCounts []int, repeat int) File {
	f := File{Schema: benchSchema}
	for _, bm := range harness.PDESBenchmarks() {
		for _, w := range workerCounts {
			bm, w := bm, w
			var events uint64
			var nsPerOp int64
			for k := 0; k < repeat; k++ {
				r := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						events = bm.Run(w)
					}
				})
				if ns := r.NsPerOp(); k == 0 || ns < nsPerOp {
					nsPerOp = ns
				}
			}
			res := Result{
				Name:        bm.Name,
				Workers:     w,
				WallNsPerOp: nsPerOp,
				Events:      events,
			}
			if nsPerOp > 0 {
				res.EventsPerSec = float64(events) / (float64(nsPerOp) / 1e9)
			}
			fmt.Fprintf(os.Stderr, "benchgate: %-6s workers=%d  %12d ns/op  %10.0f events/sec  (min of %d)\n",
				bm.Name, w, nsPerOp, res.EventsPerSec, repeat)
			f.Results = append(f.Results, res)
		}
	}
	return f
}

func readFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %v", path, err)
	}
	if f.Schema != benchSchema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, benchSchema)
	}
	return f, nil
}

func writeFile(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare renders the baseline-vs-fresh table and returns whether the
// gate passes: every baseline point must be present, fire exactly the
// baseline's event count, and not regress in wall time beyond the
// tolerance.
func compare(base, fresh File, tolerance float64) bool {
	key := func(r Result) string { return fmt.Sprintf("%s/workers=%d", r.Name, r.Workers) }
	got := map[string]Result{}
	for _, r := range fresh.Results {
		got[key(r)] = r
	}
	inBase := map[string]bool{}
	for _, b := range base.Results {
		inBase[key(b)] = true
	}
	ok := true
	fmt.Printf("%-16s %14s %14s %8s %14s  %s\n",
		"workload", "baseline ns/op", "measured ns/op", "delta", "events/sec", "verdict")
	for _, b := range base.Results {
		k := key(b)
		c, found := got[k]
		if !found {
			fmt.Printf("%-16s %14d %14s %8s %14s  MISSING\n", k, b.WallNsPerOp, "-", "-", "-")
			ok = false
			continue
		}
		delta := float64(c.WallNsPerOp)/float64(b.WallNsPerOp) - 1
		verdict := "ok"
		switch {
		case c.Events != b.Events:
			verdict = fmt.Sprintf("FAIL: fired %d events, baseline pinned %d (model changed? re-baseline with -update)",
				c.Events, b.Events)
			ok = false
		case delta > tolerance:
			verdict = fmt.Sprintf("FAIL: wall-time regression beyond %.0f%% tolerance", 100*tolerance)
			ok = false
		case delta < -tolerance:
			verdict = "ok (faster than baseline; consider ratcheting with -update)"
		}
		fmt.Printf("%-16s %14d %14d %+7.1f%% %14.0f  %s\n",
			k, b.WallNsPerOp, c.WallNsPerOp, 100*delta, c.EventsPerSec, verdict)
	}
	for _, c := range fresh.Results {
		if !inBase[key(c)] {
			fmt.Printf("%-16s %14s %14d %8s %14.0f  not in baseline (add with -update)\n",
				key(c), "-", c.WallNsPerOp, "-", c.EventsPerSec)
		}
	}
	return ok
}
