// Command benchgate is the PDES perf-trajectory gate. It times the
// parallel event kernel on the shared benchmark workloads
// (harness.PDESBenchmarks) at a fixed set of worker counts, then
// compares host wall time per operation against the committed baseline
// BENCH_pdes.json and exits nonzero on a regression beyond the
// tolerance.
//
// Usage:
//
//	benchgate [-baseline BENCH_pdes.json] [-tolerance 0.15] [-workers 1,4,8]
//	          [-benchtime 1s] [-out fresh.json] [-update]
//
// The committed baseline pins two things with different strictness:
//
//   - events: the number of simulation events each workload fires. This
//     is a pure function of the model — identical on every host and at
//     every -workers setting — so any mismatch fails the gate exactly.
//     A deliberate model change updates it via -update.
//   - wall_ns_per_op: host wall time, inherently machine- and
//     load-dependent, gated with a relative tolerance (default 0.15,
//     overridable by the BENCH_TOLERANCE environment variable — CI
//     runners with noisy neighbours set it looser).
//
// -update rewrites the baseline from the fresh measurements instead of
// comparing, which is how both deliberate perf trajectory changes and
// model changes land.
//
// The command also gates the analytic fast-path tier against
// BENCH_analytic.json: each workload answers a closed-form query batch
// (harness.AnalyticBenchmarks), and the gate pins the answer checksum
// exactly — the committed artifact is a machine-readable fingerprint of
// the calibrated model — and requires the per-query speedup over one
// equivalent DES run to stay above the -min-speedup floor (default
// 1000x, the fastpath experiment's acceptance contract). -update
// rewrites both baselines.
//
// Finally it gates the serving tier against BENCH_serve.json: the
// committed deterministic load mix is replayed against an in-process
// antonserve instance, the response checksum and cache accounting are
// pinned exactly, and the client-observed p50/p99/throughput gated
// within -serve-tolerance (default 0.50, overridable by the
// SERVE_TOLERANCE environment variable). -update rewrites this
// baseline too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"anton/internal/harness"
	"anton/internal/serve"
)

// benchSchema versions the BENCH_pdes.json layout.
const benchSchema = "anton-bench/v1"

// analyticSchema versions the BENCH_analytic.json layout.
const analyticSchema = "anton-analytic/v1"

// Result is one (workload, workers) measurement.
type Result struct {
	Name         string  `json:"name"`
	Workers      int     `json:"workers"`
	WallNsPerOp  int64   `json:"wall_ns_per_op"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// File is the BENCH_pdes.json payload.
type File struct {
	Schema  string   `json:"schema"`
	Results []Result `json:"results"`
}

// AnalyticResult is one analytic fast-path workload measurement.
type AnalyticResult struct {
	Name string `json:"name"`
	// Queries is the number of closed-form queries per batch and
	// ChecksumPs the sum of their answers in picoseconds — both pure
	// functions of the model, gated exactly (the fit fingerprint).
	Queries    int   `json:"queries"`
	ChecksumPs int64 `json:"checksum_ps"`
	// Wall-time measurements, machine-dependent: recorded for the record,
	// only the speedup floor is gated.
	AnalyticNsPerQuery float64 `json:"analytic_ns_per_query"`
	DESNsPerRun        int64   `json:"des_ns_per_run"`
	Speedup            float64 `json:"speedup"`
	QueriesPerSec      float64 `json:"queries_per_sec"`
}

// AnalyticFile is the BENCH_analytic.json payload.
type AnalyticFile struct {
	Schema  string           `json:"schema"`
	Results []AnalyticResult `json:"results"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_pdes.json", "committed baseline to compare against (and rewrite with -update)")
	tolerance := flag.Float64("tolerance", defaultTolerance(), "relative wall-time regression that fails the gate (BENCH_TOLERANCE env overrides the default)")
	workersFlag := flag.String("workers", "1,4,8", "comma-separated PDES kernel worker counts to measure")
	benchtime := flag.String("benchtime", "1s", "minimum measurement time per (workload, workers) point")
	repeat := flag.Int("repeat", 3, "measurements per point; the minimum wall time is kept (noise robustness)")
	out := flag.String("out", "", "also write the fresh measurements to this file")
	update := flag.Bool("update", false, "rewrite the baselines from the fresh measurements instead of comparing")
	analyticBaseline := flag.String("analytic-baseline", "BENCH_analytic.json",
		"committed analytic fast-path baseline (empty = skip the analytic gate)")
	analyticOut := flag.String("analytic-out", "", "also write the fresh analytic measurements to this file")
	minSpeedup := flag.Float64("min-speedup", 1000,
		"minimum analytic-vs-DES per-query speedup that passes the analytic gate")
	serveBaseline := flag.String("serve-baseline", "BENCH_serve.json",
		"committed serving-tier baseline (empty = skip the serve gate)")
	serveOut := flag.String("serve-out", "", "also write the fresh serve measurements to this file")
	serveTolerance := flag.Float64("serve-tolerance", defaultServeTolerance(),
		"relative latency/throughput regression that fails the serve gate (SERVE_TOLERANCE env overrides the default)")
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatalf("-benchtime %q: %v", *benchtime, err)
	}
	workerCounts, err := parseWorkers(*workersFlag)
	if err != nil {
		fatalf("-workers: %v", err)
	}
	if *repeat < 1 {
		fatalf("-repeat must be at least 1")
	}

	fresh := measure(workerCounts, *repeat)
	if *out != "" {
		if err := writeFile(*out, fresh); err != nil {
			fatalf("%v", err)
		}
	}
	var freshA AnalyticFile
	if *analyticBaseline != "" {
		freshA = measureAnalytic(*repeat)
		if *analyticOut != "" {
			if err := writeAnalyticFile(*analyticOut, freshA); err != nil {
				fatalf("%v", err)
			}
		}
	}
	// The serve gate replays the committed load config (or the default
	// when creating the baseline) against an in-process server.
	var freshS, baseS serve.BenchFile
	if *serveBaseline != "" {
		cfg := serve.LoadConfig{Requests: 200, Clients: 8}
		var seed uint64 = 1
		if !*update {
			baseS, err = readServeFile(*serveBaseline)
			if err != nil {
				fatalf("%v (run with -update to create the baseline)", err)
			}
			cfg.Requests, cfg.Clients, seed = baseS.Result.Requests, baseS.Result.Clients, baseS.Seed
		}
		freshS = measureServe(seed, cfg)
		if *serveOut != "" {
			if err := writeServeFile(*serveOut, freshS); err != nil {
				fatalf("%v", err)
			}
		}
	}
	if *update {
		if err := writeFile(*baseline, fresh); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("benchgate: wrote baseline %s (%d results)\n", *baseline, len(fresh.Results))
		if *analyticBaseline != "" {
			if err := writeAnalyticFile(*analyticBaseline, freshA); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("benchgate: wrote baseline %s (%d results)\n", *analyticBaseline, len(freshA.Results))
		}
		if *serveBaseline != "" {
			if err := writeServeFile(*serveBaseline, freshS); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("benchgate: wrote baseline %s\n", *serveBaseline)
		}
		return
	}

	base, err := readFile(*baseline)
	if err != nil {
		fatalf("%v (run with -update to create the baseline)", err)
	}
	ok := compare(base, fresh, *tolerance)
	if *analyticBaseline != "" {
		baseA, err := readAnalyticFile(*analyticBaseline)
		if err != nil {
			fatalf("%v (run with -update to create the baseline)", err)
		}
		if !compareAnalytic(baseA, freshA, *minSpeedup) {
			ok = false
		}
	}
	if *serveBaseline != "" {
		if !serve.CompareBench(baseS, freshS, *serveTolerance) {
			ok = false
		}
	}
	if ok {
		fmt.Println("benchgate: PASS")
		return
	}
	os.Exit(1)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}

// defaultServeTolerance is 0.50 unless the SERVE_TOLERANCE environment
// variable overrides it. Looser than the PDES gate: an end-to-end HTTP
// load run sees scheduler and network-stack noise the event kernel
// does not.
func defaultServeTolerance() float64 {
	if v := os.Getenv("SERVE_TOLERANCE"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || t < 0 {
			fatalf("SERVE_TOLERANCE=%q is not a non-negative number", v)
		}
		return t
	}
	return 0.50
}

// measureServe runs the committed load mix against an in-process server
// on a loopback listener (no external moving parts) and packages the
// result as a BENCH_serve.json payload.
func measureServe(seed uint64, cfg serve.LoadConfig) serve.BenchFile {
	srv, err := serve.New(serve.Config{Sched: serve.SchedConfig{DESWorkers: 2, AnalyticWorkers: 1}})
	if err != nil {
		fatalf("serve: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	cfg.Seed = seed
	st, err := serve.RunLoad(ts.URL+"/api/v1", nil, cfg)
	if err != nil {
		fatalf("serve: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchgate: serve %d requests  p50 %.2f ms  p99 %.2f ms  %.0f req/s  checksum %s\n",
		st.Requests, st.P50Ms, st.P99Ms, st.RPS, st.Checksum)
	return serve.BenchFile{Schema: serve.BenchSchema, Seed: seed, Result: st}
}

func readServeFile(path string) (serve.BenchFile, error) {
	var f serve.BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %v", path, err)
	}
	if f.Schema != serve.BenchSchema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, serve.BenchSchema)
	}
	return f, nil
}

func writeServeFile(path string, f serve.BenchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// defaultTolerance is 0.15 unless the BENCH_TOLERANCE environment
// variable overrides it.
func defaultTolerance() float64 {
	if v := os.Getenv("BENCH_TOLERANCE"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil || t < 0 {
			fatalf("BENCH_TOLERANCE=%q is not a non-negative number", v)
		}
		return t
	}
	return 0.15
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// measure times every gate workload at every worker count with the
// testing package's benchmark machinery (adaptive b.N against
// -benchtime), keeps the minimum of repeat measurements — the
// statistic least disturbed by scheduler and cache noise — and reports
// progress on stderr so CI logs show where the time goes.
func measure(workerCounts []int, repeat int) File {
	f := File{Schema: benchSchema}
	for _, bm := range harness.PDESBenchmarks() {
		for _, w := range workerCounts {
			bm, w := bm, w
			var events uint64
			var nsPerOp int64
			for k := 0; k < repeat; k++ {
				r := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						events = bm.Run(w)
					}
				})
				if ns := r.NsPerOp(); k == 0 || ns < nsPerOp {
					nsPerOp = ns
				}
			}
			res := Result{
				Name:        bm.Name,
				Workers:     w,
				WallNsPerOp: nsPerOp,
				Events:      events,
			}
			if nsPerOp > 0 {
				res.EventsPerSec = float64(events) / (float64(nsPerOp) / 1e9)
			}
			fmt.Fprintf(os.Stderr, "benchgate: %-6s workers=%d  %12d ns/op  %10.0f events/sec  (min of %d)\n",
				bm.Name, w, nsPerOp, res.EventsPerSec, repeat)
			f.Results = append(f.Results, res)
		}
	}
	return f
}

// measureAnalytic times every analytic fast-path workload: the query
// batch with the testing package's benchmark machinery (ns/query needs
// b.N adaptivity — a batch runs in microseconds), and the single
// equivalent DES run with a plain min-of-repeat wall clock.
func measureAnalytic(repeat int) AnalyticFile {
	f := AnalyticFile{Schema: analyticSchema}
	for _, bm := range harness.AnalyticBenchmarks() {
		bm := bm
		var checksum int64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				checksum = bm.Run()
			}
		})
		nsPerQuery := float64(r.NsPerOp()) / float64(bm.Queries)
		var desNs int64
		for k := 0; k < repeat; k++ {
			t0 := time.Now()
			bm.DES()
			if d := time.Since(t0).Nanoseconds(); k == 0 || d < desNs {
				desNs = d
			}
		}
		res := AnalyticResult{
			Name: bm.Name, Queries: bm.Queries, ChecksumPs: checksum,
			AnalyticNsPerQuery: nsPerQuery, DESNsPerRun: desNs,
		}
		if nsPerQuery > 0 {
			res.Speedup = float64(desNs) / nsPerQuery
			res.QueriesPerSec = 1e9 / nsPerQuery
		}
		fmt.Fprintf(os.Stderr, "benchgate: %-10s %10.1f ns/query  %12.0f queries/sec  DES %10d ns/run  %8.0fx  (min of %d)\n",
			bm.Name, nsPerQuery, res.QueriesPerSec, desNs, res.Speedup, repeat)
		f.Results = append(f.Results, res)
	}
	return f
}

// compareAnalytic renders the analytic gate table and returns whether it
// passes: every baseline workload must be present, answer exactly the
// baseline's checksum over exactly its query count (the model
// fingerprint), and keep the per-query speedup above the floor. Wall
// times are recorded, not compared — they are machine-dependent.
func compareAnalytic(base, fresh AnalyticFile, minSpeedup float64) bool {
	got := map[string]AnalyticResult{}
	for _, r := range fresh.Results {
		got[r.Name] = r
	}
	ok := true
	fmt.Printf("\n%-10s %8s %16s %12s %14s %10s  %s\n",
		"workload", "queries", "checksum (ps)", "ns/query", "queries/sec", "speedup", "verdict")
	for _, b := range base.Results {
		c, found := got[b.Name]
		if !found {
			fmt.Printf("%-10s %8d %16d %12s %14s %10s  MISSING\n", b.Name, b.Queries, b.ChecksumPs, "-", "-", "-")
			ok = false
			continue
		}
		verdict := "ok"
		switch {
		case c.Queries != b.Queries || c.ChecksumPs != b.ChecksumPs:
			verdict = fmt.Sprintf("FAIL: answered %d ps over %d queries, baseline pinned %d over %d (model changed? re-baseline with -update)",
				c.ChecksumPs, c.Queries, b.ChecksumPs, b.Queries)
			ok = false
		case c.Speedup < minSpeedup:
			verdict = fmt.Sprintf("FAIL: %.0fx speedup below the %.0fx floor", c.Speedup, minSpeedup)
			ok = false
		}
		fmt.Printf("%-10s %8d %16d %12.1f %14.0f %9.0fx  %s\n",
			c.Name, c.Queries, c.ChecksumPs, c.AnalyticNsPerQuery, c.QueriesPerSec, c.Speedup, verdict)
	}
	for _, c := range fresh.Results {
		found := false
		for _, b := range base.Results {
			if b.Name == c.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-10s %8d %16d %12.1f %14.0f %9.0fx  not in baseline (add with -update)\n",
				c.Name, c.Queries, c.ChecksumPs, c.AnalyticNsPerQuery, c.QueriesPerSec, c.Speedup)
		}
	}
	return ok
}

func readAnalyticFile(path string) (AnalyticFile, error) {
	var f AnalyticFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %v", path, err)
	}
	if f.Schema != analyticSchema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, analyticSchema)
	}
	return f, nil
}

func writeAnalyticFile(path string, f AnalyticFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %v", path, err)
	}
	if f.Schema != benchSchema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, benchSchema)
	}
	return f, nil
}

func writeFile(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare renders the baseline-vs-fresh table and returns whether the
// gate passes: every baseline point must be present, fire exactly the
// baseline's event count, and not regress in wall time beyond the
// tolerance.
func compare(base, fresh File, tolerance float64) bool {
	key := func(r Result) string { return fmt.Sprintf("%s/workers=%d", r.Name, r.Workers) }
	got := map[string]Result{}
	for _, r := range fresh.Results {
		got[key(r)] = r
	}
	inBase := map[string]bool{}
	for _, b := range base.Results {
		inBase[key(b)] = true
	}
	ok := true
	fmt.Printf("%-16s %14s %14s %8s %14s  %s\n",
		"workload", "baseline ns/op", "measured ns/op", "delta", "events/sec", "verdict")
	for _, b := range base.Results {
		k := key(b)
		c, found := got[k]
		if !found {
			fmt.Printf("%-16s %14d %14s %8s %14s  MISSING\n", k, b.WallNsPerOp, "-", "-", "-")
			ok = false
			continue
		}
		delta := float64(c.WallNsPerOp)/float64(b.WallNsPerOp) - 1
		verdict := "ok"
		switch {
		case c.Events != b.Events:
			verdict = fmt.Sprintf("FAIL: fired %d events, baseline pinned %d (model changed? re-baseline with -update)",
				c.Events, b.Events)
			ok = false
		case delta > tolerance:
			verdict = fmt.Sprintf("FAIL: wall-time regression beyond %.0f%% tolerance", 100*tolerance)
			ok = false
		case delta < -tolerance:
			verdict = "ok (faster than baseline; consider ratcheting with -update)"
		}
		fmt.Printf("%-16s %14d %14d %+7.1f%% %14.0f  %s\n",
			k, b.WallNsPerOp, c.WallNsPerOp, 100*delta, c.EventsPerSec, verdict)
	}
	for _, c := range fresh.Results {
		if !inBase[key(c)] {
			fmt.Printf("%-16s %14s %14d %8s %14.0f  not in baseline (add with -update)\n",
				key(c), "-", c.WallNsPerOp, "-", c.EventsPerSec)
		}
	}
	return ok
}
